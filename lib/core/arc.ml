let algorithm = "arc"

(* Named result signature of [Make] (the .mli documents it): lets
   consumers of a register built over a runtime-chosen substrate — a
   first-class [Mem_intf.S] over an mmap'd file — package the functor
   result as [(module Arc.S with ...)]. *)
module type S = sig
  include Register_intf.ZERO_COPY

  val read_stamped : reader -> f:(Mem.buffer -> int -> 'a) -> int * 'a
  val probe_stamp : t -> int
  val read_plain : reader -> f:(Mem.buffer -> int -> 'a) -> 'a
  val create_with : use_hint:bool -> readers:int -> capacity:int -> init:int array -> t
  val write_guarded : t -> guard:(unit -> unit) -> src:int array -> len:int -> unit
  val recover_crash : t -> int
  val quarantine : t -> int -> unit
  val write_probes : t -> int
  val writes : t -> int

  val write_coalesced :
    t -> max_pending:int -> max_staleness:int -> src:int array -> len:int -> unit

  val flush_coalesced : t -> unit
  val pending_writes : t -> int
  val coalesced_batches : t -> int
  val coalesced_absorbed : t -> int
  val max_coalesced_batch : t -> int

  type telemetry

  val make_telemetry :
    ?ring:int -> ?clock:(unit -> int) -> readers:int -> unit -> telemetry

  val set_telemetry : t -> telemetry option -> unit
  val telemetry : t -> telemetry option
  val fast_reads : telemetry -> int
  val slow_reads : telemetry -> int
  val hint_hits : telemetry -> int
  val plain_reads : telemetry -> int
  val plain_fallbacks : telemetry -> int
  val metrics : t -> Arc_obs.Obs.metric list
  val trace : t -> Arc_obs.Ring.entry list

  module Debug : sig
    val slots : t -> int
    val current : t -> int
    val r_start : t -> int -> int
    val r_end : t -> int -> int
    val slot_size : t -> int -> int
    val slot_seq : t -> int -> int
    val slot_seq_end : t -> int -> int
    val presence_slack : t -> int
    val presence_bound_holds : t -> bool
    val free_slot_exists : t -> bool
    val force_current : t -> int -> unit
    val unvalidated_plain : reader -> f:(Mem.buffer -> int -> 'a) -> 'a
  end
end

module Packed = Arc_util.Packed

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M
  module Obs = Arc_obs.Obs
  module Ring = Arc_obs.Ring

  (* Telemetry (ISSUE 5).  All counters are host-heap {!Obs.Cell}s —
     plain single-writer words outside the substrate [M] — so
     recording adds no substrate operations: nothing for
     {!Arc_mem.Counting} to charge to the algorithm and no scheduling
     points under the virtual scheduler (attaching telemetry changes
     no checker-visible history).  Fast/slow read cells are
     per-reader-identity, cached in the reader handle at {!reader}
     time; the ring records only slow-path writer/recovery
     transitions.  When no telemetry is attached every hook is a
     single [None] branch. *)
  type telemetry = {
    fast_hits : Obs.Group.t;  (* per reader identity: R2 fast-path reads *)
    slow_cells : Obs.Group.t;  (* per reader identity: R3+R4 slow reads *)
    plain_cells : Obs.Group.t;  (* per reader identity: validated R2' plain reads *)
    pfall_cells : Obs.Group.t;  (* per reader identity: R2' stamp-mismatch fallbacks *)
    hint_cell : Obs.Cell.t;  (* writer: §3.4 proposals accepted by W1 *)
    tel_ring : Ring.t;  (* slot-state transition trace *)
    clock : unit -> int;  (* timestamp source for ring entries *)
  }

  (* Layout note.  [r_start]/[r_end] are hammered by releasing readers
     while the writer polls them during its free-slot scan, and the
     writer resets them on every recycle — pair-contended allocation
     keeps that RMW traffic off the cache lines of [size], the buffer
     and the neighbouring slots, while keeping the two counters
     together: every operation that touches one touches the other
     (read entry/exit, the probe's equality test), so the pair costs
     one line, not two.  [size] stays a plain cell: it is written once
     per recycle and read once per read, always adjacent in time to
     the content accesses of the same slot. *)
  type slot = {
    size : M.atomic;  (* words of the snapshot currently in [content] *)
    seq : M.atomic;  (* begin stamp: stored {e before} the content copy *)
    seq_end : M.atomic;
        (* end stamp: stored {e after} content and size.  The pair
           brackets slot preparation seqlock-style — [seq_end = s]
           followed (in program order) by [seq = s] read around a plain
           content scan certifies the scan saw write [s] whole; any
           overlap with a re-preparation leaves the two unequal, since
           the writer bumps [seq] to the fresh (strictly greater) stamp
           before touching a word of content.  This is what makes the
           copy-free validated R2' read ([read_plain]) sound. *)
    r_start : M.atomic;  (* reads started on this slot since its last update *)
    r_end : M.atomic;  (* reads completed on this slot since its last update *)
    content : M.buffer;
  }

  type t = {
    slots : slot array;  (* N + 2, the classical lower bound *)
    current : M.atomic;  (* packed ⟨index, count⟩ — the synchronization word *)
    readers : int;
    use_hint : bool;
    hint : M.atomic;  (* §3.4 free-slot proposal; -1 when empty *)
    (* Crash-recovery journal (ISSUE 3): the index of the slot whose
       supersede-freeze (W3) is in flight, -1 when no write is mid-
       publish.  Written by the writer around W2/W3; read only by a
       {e successor} writer in [recover_crash] after a failover, so a
       plain cell would do on real hardware — it is atomic so the
       handoff is well-defined on any substrate. *)
    prefreeze : M.atomic;
    (* Writer-private state: accessed only by the single writer thread
       (writer {e role} — under supervised failover the role moves
       between threads, but lease discipline guarantees no overlap). *)
    mutable quarantined : int list;  (* slots retired by [recover_crash] *)
    mutable last_slot : int;
    mutable probes : int;
    mutable writes : int;
    (* Publish-stamp counter (Register_intf.STAMPED): strictly
       increasing over the writer role's lifetime, one fresh value per
       prepared slot, stored into the slot's [seq] before the W2
       publish.  Writer-private; a successor resyncs it from the slots
       in [recover_crash] so stamps stay unique across failover. *)
    mutable stamp : int;
    (* Write-coalescing staging (writer-private, host-heap): the latest
       absorbed snapshot plus the count of absorbed-but-unpublished
       writes.  Publishing the staged value is one ordinary write — one
       W2 exchange and one slot copy for the whole batch. *)
    co_buf : int array;
    mutable co_len : int;  (* staged length; -1 = nothing staged *)
    mutable co_pending : int;  (* absorbed writes since the last publish *)
    mutable co_batches : int;  (* coalesced publishes *)
    mutable co_absorbed : int;  (* total writes absorbed into batches *)
    mutable co_max_batch : int;  (* largest batch published so far *)
    mutable tel : telemetry option;
  }

  (* Per-identity counter cells, resolved once at handle creation so
     the fast path pays one option check and one plain increment. *)
  type rcells = {
    fast : Obs.Cell.t;
    slow : Obs.Cell.t;
    plain : Obs.Cell.t;
    pfall : Obs.Cell.t;
  }

  (* [last_current]/[view_buf]/[view_len] cache the full packed word
     observed at the last (re)subscription together with the validated
     view.  While this reader is subscribed to a slot, that slot can
     never drain (this reader's release unit is outstanding), hence
     never be recycled or republished — so [current] reading exactly
     the cached word certifies both the index {e and} the content are
     the cached ones, and the hot hit skips the index unpack, the slot
     array load and the size load.  ABA on the packed word is
     impossible for the same reason: re-publishing the pinned index
     requires this reader's release first. *)
  type reader = {
    reg : t;
    mutable last_index : int;
    mutable last_current : int;
    mutable view_buf : M.buffer;
    mutable view_len : int;
    cells : rcells option;
  }

  let algorithm = algorithm

  let caps =
    {
      Register_intf.wait_free = true;
      zero_copy = true;
      max_readers = (fun ~capacity_words:_ -> Some Packed.max_readers);
      snapshot_read = true;
    }

  let create_with ~use_hint ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Arc.create: need at least one reader";
    if readers > Packed.max_readers then
      invalid_arg
        (Printf.sprintf "Arc.create: readers = %d exceed the 2^32 - 2 capacity"
           readers);
    if capacity < 1 then invalid_arg "Arc.create: capacity must be positive";
    if Array.length init > capacity then
      invalid_arg "Arc.create: init longer than capacity";
    let nslots = readers + 2 in
    if nslots - 1 > Packed.max_index then
      invalid_arg "Arc.create: slot count exceeds index field";
    let fresh_slot () =
      let r_start, r_end = M.atomic_contended_pair 0 0 in
      {
        size = M.atomic 0;
        seq = M.atomic 0;
        seq_end = M.atomic 0;
        r_start;
        r_end;
        content = M.alloc capacity;
      }
    in
    let slots = Array.init nslots (fun _ -> fresh_slot ()) in
    (* I1: the initial value lives in slot 0 and [current] starts as
       ⟨index = 0, count = N⟩ — as if every reader had already
       subscribed to slot 0; reader handles start with last_index = 0
       accordingly, so a first read of an unchanged register is
       already on the RMW-free fast path. *)
    M.write_words slots.(0).content ~src:init ~len:(Array.length init);
    M.store slots.(0).size (Array.length init);
    M.store slots.(0).seq 1;
    M.store slots.(0).seq_end 1;
    {
      slots;
      (* [current] is the single globally hottest word (every reader
         loads it, misses RMW it, the writer exchanges it) and [hint]
         is stored by readers while the writer polls it — both get
         their own cache lines. *)
      current = M.atomic_contended (Packed.make ~index:0 ~count:readers);
      readers;
      use_hint;
      hint = M.atomic_contended (-1);
      prefreeze = M.atomic (-1);
      quarantined = [];
      last_slot = 0;
      probes = 0;
      writes = 0;
      stamp = 1;
      co_buf = Array.make capacity 0;
      co_len = -1;
      co_pending = 0;
      co_batches = 0;
      co_absorbed = 0;
      co_max_batch = 0;
      tel = None;
    }

  let create ~readers ~capacity ~init = create_with ~use_hint:true ~readers ~capacity ~init

  let make_telemetry ?(ring = 256) ?(clock = fun () -> 0) ~readers () =
    {
      fast_hits =
        Obs.Group.create ~name:"arc_reads_fast_total"
          ~help:"Reads served on the RMW-free fast path (R2)" readers;
      slow_cells =
        Obs.Group.create ~name:"arc_reads_slow_total"
          ~help:"Reads that paid the R3+R4 RMW pair" readers;
      plain_cells =
        Obs.Group.create ~name:"arc_reads_plain_total"
          ~help:"Validated copy-free plain-load reads (R2')" readers;
      pfall_cells =
        Obs.Group.create ~name:"arc_reads_plain_fallback_total"
          ~help:"R2' stamp mismatches that fell back to the classic path"
          readers;
      hint_cell = Obs.Cell.create ();
      tel_ring = Ring.create ring;
      clock;
    }

  (* Attach before creating reader handles: handles resolve their
     counter cells once, at [reader] time. *)
  let set_telemetry reg tel = reg.tel <- tel
  let telemetry reg = reg.tel
  let fast_reads tel = Obs.Group.value tel.fast_hits
  let slow_reads tel = Obs.Group.value tel.slow_cells
  let plain_reads tel = Obs.Group.value tel.plain_cells
  let plain_fallbacks tel = Obs.Group.value tel.pfall_cells
  let hint_hits tel = Obs.Cell.get tel.hint_cell

  let trace reg =
    match reg.tel with None -> [] | Some tel -> Ring.dump tel.tel_ring

  let reader reg i =
    if i < 0 || i >= reg.readers then invalid_arg "Arc.reader: identity out of range";
    let cells =
      match reg.tel with
      | None -> None
      | Some tel ->
        Some
          {
            fast = Obs.Group.cell tel.fast_hits i;
            slow = Obs.Group.cell tel.slow_cells i;
            plain = Obs.Group.cell tel.plain_cells i;
            pfall = Obs.Group.cell tel.pfall_cells i;
          }
    in
    (* [last_current = -1] never matches a packed word, so the first
       read revalidates through the index branch and fills the view
       cache — keeping handle creation free of substrate operations. *)
    {
      reg;
      last_index = 0;
      last_current = -1;
      view_buf = reg.slots.(0).content;
      view_len = 0;
      cells;
    }

  (* Algorithm 2.  The fast path (R2) performs a single plain load of
     [current]; only when a newer value was published does the reader
     pay two RMWs (R3 release + R4 subscribe).  The hot hit compares
     the whole packed word against the cached [last_current]: an exact
     match certifies nothing moved (the pinned slot cannot be
     republished, see the [reader] type), so the cached view is
     returned without unpacking the index or reloading the size.  A
     word that differs only in the count field still lands on the
     RMW-free path through the index comparison, merely refreshing the
     cache — the fast/slow telemetry split is unchanged: fast = reads
     that paid no RMW. *)
  let read_view rd =
    let reg = rd.reg in
    let w = M.load reg.current (* R1 *) in
    if w = rd.last_current then begin
      (* R2 hot hit: zero RMW, zero further memory traffic — the
         telemetry hit marker is a plain store to this identity's
         private cell, never an atomic. *)
      (match rd.cells with
      | Some c -> c.fast.Obs.Cell.v <- c.fast.Obs.Cell.v + 1
      | None -> ());
      (rd.view_buf, rd.view_len)
    end
    else begin
      let index = Packed.index w in
      if rd.last_index = index then begin
        (* R2: other readers churned the count but the published slot
           is still ours — refresh the cached word, stay RMW-free.
           [w]'s index is the pinned slot, so caching it is sound. *)
        (match rd.cells with
        | Some c -> c.fast.Obs.Cell.v <- c.fast.Obs.Cell.v + 1
        | None -> ());
        rd.last_current <- w
      end
      else begin
        (match rd.cells with
        | Some c -> c.slow.Obs.Cell.v <- c.slow.Obs.Cell.v + 1
        | None -> ());
        let released = reg.slots.(rd.last_index) in
        M.incr released.r_end (* R3 *);
        if reg.use_hint then begin
          (* §3.4: if this release made the slot reusable, propose it to
             the writer.  Plain loads/stores suffice: a stale proposal is
             re-validated by the writer before use. *)
          let fin = M.load released.r_end in
          if fin = M.load released.r_start then M.store reg.hint rd.last_index
        end;
        let now = M.add_and_fetch reg.current 1 (* R4 *) in
        (* Saturation guard: with count ≤ readers ≤ 2^32 - 2 by
           construction this cannot fire; if the count word is ever
           corrupted (or force-saturated by a fault campaign), the next
           increment must not silently carry into the index bits.  A
           post-increment count of 0 is a wrap that already happened;
           count = max_count means this increment consumed the last
           head-room unit above the documented 2^32 - 2 bound.  The
           typed error and message shape are the repository-wide ones
           (Arc_util.Saturation = Register_intf.Saturated, ISSUE 8). *)
        Arc_util.Saturation.guard_count ~who:"Arc.read"
          ~bound:Packed.max_readers (Packed.count now);
        rd.last_index <- Packed.index now (* R5 *);
        (* Cache the exact word the subscription returned: its index is
           the slot this reader now pins, so a later exact match can
           only mean that same publish is still current. *)
        rd.last_current <- now
      end;
      let entry = reg.slots.(rd.last_index) in
      rd.view_buf <- entry.content;
      rd.view_len <- M.load entry.size;
      (rd.view_buf, rd.view_len)
    end

  let read_with rd ~f =
    let buffer, len = read_view rd in
    f buffer len

  (* Register_intf.STAMPED.  The subscribed slot is pinned by this
     reader's presence (count or frozen r_start unit), so its [seq] is
     exactly the stamp of the write whose content [read_view] just
     returned — one extra plain load over a plain read. *)
  let read_stamped rd ~f =
    let buffer, len = read_view rd in
    let stamp = M.load rd.reg.slots.(rd.last_index).seq in
    (stamp, f buffer len)

  (* Register_intf.STAMPED.  Two plain loads, no RMW, no presence
     accounting — safe from any thread.  The published slot is never
     the one being prepared ([find_free] excludes [last_slot]), so a
     probe either reads the stamp of the currently published value or,
     if the slot was superseded, drained and recycled between the two
     loads, a strictly {e greater} stamp of a later write mid-
     preparation.  Stamps are writer-unique and increasing, so a probe
     can spuriously mismatch a concurrent collect but never falsely
     match it. *)
  let probe_stamp reg =
    let index = Packed.index (M.load reg.current) in
    M.load reg.slots.(index).seq

  (* R2': the validated copy-free plain-load read.  One attempt, one
     bounded fallback — never a retry loop, so wait-freedom is
     preserved with a worst case of one wasted scan plus one classic
     read.

     Soundness.  [e1 = seq_end] is loaded before the content scan and
     [b2 = seq] after it; the writer stores the fresh (strictly
     greater) stamp into [seq] {e before} touching a word of content
     and into [seq_end] only once content and size are complete, so
     [b2 = e1] certifies no re-preparation overlapped the scan — the
     seqlock argument, split across two words.  The trailing [current]
     recheck closes the remaining hole: without it the scan could
     validate a fully-prepared but {e not yet published} write (slot
     recycled under the reader, new write complete, publish pending),
     which a later reader might then precede with the older value — a
     new-old inversion.  With the recheck, the slot is the published
     one at validation time, and a published slot always holds the
     write its stamp names (the writer never prepares the current
     slot), so the validated value was published before we returned.
     Freshness: the attempt starts from its own [current] load, so the
     value is the published write at that instant or a later one —
     independent of this handle's subscription, whose pin is left
     untouched (a validated R2' read neither releases nor
     subscribes).

     [f] runs on the shared buffer {e before} validation: on a
     concurrent overlap it can observe a torn view whose result is
     discarded.  It must therefore be pure and total on arbitrary
     word contents (no [f]-visible invariants may be assumed), exactly
     like a seqlock read section. *)
  let read_plain_validated rd w ~f =
    let reg = rd.reg in
    let index = Packed.index w in
    let entry = reg.slots.(index) in
    let e1 = M.load entry.seq_end in
    let len = M.load entry.size in
    let buf = entry.content in
    if len >= 0 && len <= M.capacity buf && M.load entry.seq = e1 then begin
      let r = f buf len in
      if
        M.load entry.seq = e1
        && Packed.index (M.load reg.current) = index
      then begin
        (match rd.cells with
        | Some c -> c.plain.Obs.Cell.v <- c.plain.Obs.Cell.v + 1
        | None -> ());
        r
      end
      else begin
        (match rd.cells with
        | Some c -> c.pfall.Obs.Cell.v <- c.pfall.Obs.Cell.v + 1
        | None -> ());
        read_with rd ~f
      end
    end
    else begin
      (match rd.cells with
      | Some c -> c.pfall.Obs.Cell.v <- c.pfall.Obs.Cell.v + 1
      | None -> ());
      read_with rd ~f
    end

  let read_plain rd ~f =
    let reg = rd.reg in
    let w = M.load reg.current in
    if w = rd.last_current then begin
      (* Pinned hot hit, same argument as [read_view]: the packed word
         is unchanged since this handle's last subscription, the
         subscribed slot is presence-pinned and therefore immutable, so
         the cached view needs no stamp validation at all — a mixed
         hold loop (read_plain between writes, one classic fallback
         per write) pays a single load per read at steady state. *)
      (match rd.cells with
      | Some c -> c.plain.Obs.Cell.v <- c.plain.Obs.Cell.v + 1
      | None -> ());
      f rd.view_buf rd.view_len
    end
    else read_plain_validated rd w ~f

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        if Array.length dst < len then invalid_arg "Arc.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  (* [j <> last_slot] excludes the current slot: the current slot's
     subscribers live in [current]'s count field, not in
     r_start/r_end, so the counter test alone would call it free.
     Between writes last_slot = current's index for an uninterrupted
     writer; a crashed predecessor may have died between its publish
     and the last_slot update, which is why [recover_crash]
     re-establishes the invariant from the synchronization word before
     a successor's first search.  [quarantined] is writer-private —
     membership costs no shared-memory access. *)
  let slot_free reg j =
    j <> reg.last_slot
    && (not (List.memq j reg.quarantined))
    && M.load reg.slots.(j).r_start = M.load reg.slots.(j).r_end

  (* W1: free-slot search.  Try the readers' proposal first (O(1)
     amortized), then scan — Lemma 4.1 guarantees a free slot exists
     among the N+2 within one sweep. *)
  let find_free reg =
    let proposal =
      if not reg.use_hint then -1
      else begin
        let h = M.load reg.hint in
        if h >= 0 then M.store reg.hint (-1);
        h
      end
    in
    if proposal >= 0 && proposal < Array.length reg.slots && slot_free reg proposal
    then begin
      reg.probes <- reg.probes + 1;
      (match reg.tel with
      | Some tel ->
        Obs.Cell.incr tel.hint_cell;
        Ring.record tel.tel_ring ~at:(tel.clock ()) ~code:Ring.code_slot_claim
          proposal 1 0
      | None -> ());
      proposal
    end
    else begin
      let n = Array.length reg.slots in
      let rec scan step =
        if step > n then failwith "Arc.write: no free slot (invariant violated)"
        else begin
          let j = (reg.last_slot + step) mod n in
          reg.probes <- reg.probes + 1;
          M.cede ();
          if slot_free reg j then begin
            (match reg.tel with
            | Some tel ->
              Ring.record tel.tel_ring ~at:(tel.clock ())
                ~code:Ring.code_slot_claim j 0 step
            | None -> ());
            j
          end
          else scan (step + 1)
        end
      in
      scan 1
    end

  (* Algorithm 3.  [guard] is the epoch-fence hook
     (Register_intf.FENCEABLE): it runs once the slot is fully
     prepared, immediately before the W2 publish.  If it raises, the
     write aborts with nothing published — the slot was free and both
     its counters are 0/0, so the ledger is untouched and the next
     write reuses it. *)
  let write_guarded reg ~guard ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Arc.write: bad length";
    (* A direct write supersedes anything still staged by
       [write_coalesced]: the staged writes are absorbed into this
       batch (they were older), never resurrected by a later flush. *)
    if reg.co_pending > 0 then begin
      let batch = reg.co_pending + 1 in
      reg.co_pending <- 0;
      reg.co_len <- -1;
      reg.co_batches <- reg.co_batches + 1;
      if batch > reg.co_max_batch then reg.co_max_batch <- batch
    end;
    let slot = find_free reg (* W1 *) in
    let entry = reg.slots.(slot) in
    if len > M.capacity entry.content then invalid_arg "Arc.write: exceeds capacity";
    (* Stamp the slot {e before} the content copy: strictly increasing
       per writer role, so [probe_stamp] equality certifies an
       unchanged published value (see [probe_stamp]) and an R2' plain
       scan overlapping this preparation is guaranteed to observe
       [seq <> seq_end] on at least one side (see the [slot] type).  A
       guard abort burns the stamp — stamps are unique, not dense.  A
       writer crash mid-copy leaves [seq <> seq_end], so no plain read
       can ever validate the torn content. *)
    reg.stamp <- reg.stamp + 1;
    M.store entry.seq reg.stamp;
    M.write_words entry.content ~src ~len;
    M.store entry.size len;
    M.store entry.seq_end reg.stamp;
    M.store entry.r_start 0;
    M.store entry.r_end 0;
    (* W1.5: journal the slot about to be superseded.  Its subscriber
       count exists only in [current] until W3 freezes it into
       r_start; if this writer dies in between, a successor's
       [recover_crash] reads the journal and quarantines the slot
       instead of handing it back to [find_free] with readers still on
       it.  [last_slot] names the slot about to be superseded (it
       equals [current]'s index between writes, by [recover_crash] for
       a successor's first write).  Journalled before [guard] so the
       fencing residual window (guard load → publish) stays a single
       instruction. *)
    M.store reg.prefreeze reg.last_slot;
    (try guard ()
     with e ->
       M.store reg.prefreeze (-1);
       raise e);
    let old = M.exchange reg.current (Packed.of_index slot) (* W2 *) in
    let old_slot = Packed.index old in
    (* W3: freeze the readers-presence of the superseded slot into its
       r_start; it becomes free again once the laggards' R3 increments
       bring r_end up to this value. *)
    M.store reg.slots.(old_slot).r_start (Packed.count old);
    reg.last_slot <- slot;
    M.store reg.prefreeze (-1);
    reg.writes <- reg.writes + 1;
    match reg.tel with
    | Some tel ->
      let at = tel.clock () in
      Ring.record tel.tel_ring ~at ~code:Ring.code_publish slot old_slot 0;
      Ring.record tel.tel_ring ~at ~code:Ring.code_freeze old_slot
        (Packed.count old) 0
    | None -> ()

  (* Successor-writer recovery (Register_intf.FENCEABLE): quarantine
     the journaled mid-publish slot, if any, and re-establish the
     last_slot = current-index invariant the predecessor may have died
     without restoring.  The quarantine is a deliberate bounded leak:
     one slot per writer crash at most, paid for by over-provisioning
     reader identities (each unused identity is a net spare slot). *)
  let recover_crash reg =
    let j = M.load reg.prefreeze in
    reg.last_slot <- Packed.index (M.load reg.current);
    (* Stamp resync: the predecessor's counter was heap-local and died
       with it.  Every issued stamp is visible in some slot's [seq]
       (quarantined slots keep theirs), so the max over slots restores
       strict monotonicity for the successor's writes. *)
    Array.iter (fun s -> reg.stamp <- max reg.stamp (M.load s.seq)) reg.slots;
    let quarantined =
      if j >= 0 then begin
        M.store reg.prefreeze (-1);
        if List.memq j reg.quarantined then 0
        else begin
          reg.quarantined <- j :: reg.quarantined;
          1
        end
      end
      else 0
    in
    (match reg.tel with
    | Some tel ->
      Ring.record tel.tel_ring ~at:(tel.clock ()) ~code:Ring.code_recover
        reg.last_slot quarantined j
    | None -> ());
    quarantined

  (* External-evidence quarantine (Register_intf.FENCEABLE): retire a
     slot convicted by an integrity layer below the register — e.g. a
     checksum scan of a crash-recovered shared-memory mapping finding
     the torn content copy of a SIGKILLed writer.  Same writer-private
     list as [recover_crash], so [slot_free] excludes it from reuse. *)
  let quarantine reg j =
    if j < 0 || j >= Array.length reg.slots then
      invalid_arg
        (Printf.sprintf "Arc.quarantine: slot %d out of range [0, %d)" j
           (Array.length reg.slots));
    if not (List.memq j reg.quarantined) then begin
      reg.quarantined <- j :: reg.quarantined;
      match reg.tel with
      | Some tel ->
        Ring.record tel.tel_ring ~at:(tel.clock ()) ~code:Ring.code_quarantine
          j 0 0
      | None -> ()
    end

  let write reg ~src ~len = write_guarded reg ~guard:ignore ~src ~len

  (* Write coalescing (ROADMAP item 2b).  Absorb into writer-private
     staging; publish the whole batch with one ordinary write — one W2
     exchange and one slot copy.  Readers observe the bounded-staleness
     contract of [Checker.check_bounded_staleness]: a published value
     lags the newest absorbed write by at most [max_pending - 1]
     absorbed writes, and [Checker.check_coalesced] judges the publish
     subsequence (monotone, gaps ≤ the bound, final write never
     lost provided the caller flushes). *)
  let flush_coalesced reg =
    if reg.co_pending > 0 then begin
      let batch = reg.co_pending and len = reg.co_len in
      reg.co_pending <- 0;
      reg.co_len <- -1;
      reg.co_batches <- reg.co_batches + 1;
      if batch > reg.co_max_batch then reg.co_max_batch <- batch;
      write reg ~src:reg.co_buf ~len
    end

  let write_coalesced reg ~max_pending ~max_staleness ~src ~len =
    if max_pending < 1 then
      invalid_arg
        (Printf.sprintf "Arc.write_coalesced: max_pending = %d (need >= 1)"
           max_pending);
    if max_staleness < max_pending then
      invalid_arg
        (Printf.sprintf
           "Arc.write_coalesced: max_pending = %d exceeds max_staleness = %d"
           max_pending max_staleness);
    if len < 0 || len > Array.length src then
      invalid_arg "Arc.write_coalesced: bad length";
    if len > Array.length reg.co_buf then
      invalid_arg "Arc.write_coalesced: exceeds capacity";
    Array.blit src 0 reg.co_buf 0 len;
    reg.co_len <- len;
    reg.co_pending <- reg.co_pending + 1;
    reg.co_absorbed <- reg.co_absorbed + 1;
    if reg.co_pending >= max_pending then flush_coalesced reg

  let pending_writes reg = reg.co_pending
  let coalesced_batches reg = reg.co_batches
  let coalesced_absorbed reg = reg.co_absorbed
  let max_coalesced_batch reg = reg.co_max_batch
  let write_probes reg = reg.probes
  let writes reg = reg.writes

  let metrics reg =
    let base =
      [
        Obs.counter "arc_writes_total" ~help:"Completed register writes"
          reg.writes;
        Obs.counter "arc_write_probes_total"
          ~help:"Slots examined by W1 free-slot searches" reg.probes;
        Obs.counter "arc_quarantined_slots"
          ~help:"Slots retired by crash recovery or external conviction"
          (List.length reg.quarantined);
        Obs.counter "arc_coalesced_batches_total"
          ~help:"Coalesced publishes (one exchange per batch)"
          reg.co_batches;
        Obs.counter "arc_coalesced_writes_total"
          ~help:"Writes absorbed into coalescing batches" reg.co_absorbed;
        Obs.gauge "arc_coalesced_max_batch"
          ~help:"Largest coalesced batch published so far"
          (float_of_int reg.co_max_batch);
      ]
    in
    match reg.tel with
    | None -> base
    | Some tel ->
      let per_reader group =
        Array.to_list
          (Array.mapi
             (fun i v ->
               Obs.counter (Obs.Group.name group)
                 ~labels:[ ("reader", string_of_int i) ]
                 ~help:(Obs.Group.help group) v)
             (Obs.Group.per_domain group))
      in
      per_reader tel.fast_hits
      @ per_reader tel.slow_cells
      @ per_reader tel.plain_cells
      @ per_reader tel.pfall_cells
      @ Obs.counter "arc_hint_hits_total"
          ~help:"§3.4 free-slot proposals accepted by the writer"
          (Obs.Cell.get tel.hint_cell)
        :: Obs.counter "arc_trace_events_total"
             ~help:"Slot-state transitions recorded in the trace ring"
             (Ring.recorded tel.tel_ring)
        :: base

  module Debug = struct
    let slots reg = Array.length reg.slots
    let current reg = M.load reg.current
    let r_start reg j = M.load reg.slots.(j).r_start
    let r_end reg j = M.load reg.slots.(j).r_end
    let slot_size reg j = M.load reg.slots.(j).size
    let slot_seq reg j = M.load reg.slots.(j).seq
    let slot_seq_end reg j = M.load reg.slots.(j).seq_end

    (* Negative control for the R2' tests: the same plain scan with the
       stamp validation deliberately skipped — a schedule overlapping a
       write must let the payload checker convict the torn view. *)
    let unvalidated_plain rd ~f =
      let reg = rd.reg in
      let index = Packed.index (M.load reg.current) in
      let entry = reg.slots.(index) in
      let len = M.load entry.size in
      let buf = entry.content in
      let len = if len < 0 || len > M.capacity buf then 0 else len in
      f buf len

    (* readers − (Σ_j (r_start j − r_end j) + count current).  0 in any
       quiescent live state; under crash-stop readers each crash can
       leak at most one unit of presence out of the ledger (a reader
       that died between its R3 release and R4 subscribe), so the
       slack stays within [0, crashed readers] and never goes
       negative — negative slack means presence was double-counted
       (e.g. a lost R3 release). *)
    let presence_slack reg =
      let frozen = ref 0 in
      Array.iter
        (fun s -> frozen := !frozen + (M.load s.r_start - M.load s.r_end))
        reg.slots;
      reg.readers - (!frozen + Packed.count (M.load reg.current))

    let presence_bound_holds reg = presence_slack reg = 0

    (* Test-only: overwrite the synchronization word, e.g. to place
       the count at the saturation boundary. *)
    let force_current reg w = M.store reg.current w

    let free_slot_exists reg =
      let published = Packed.index (M.load reg.current) in
      let n = Array.length reg.slots in
      let rec go j =
        if j >= n then false
        else if
          j <> published
          && (not (List.memq j reg.quarantined))
          && M.load reg.slots.(j).r_start = M.load reg.slots.(j).r_end
        then true
        else go (j + 1)
      in
      go 0
  end
end

module Series = Arc_report.Series
module Table = Arc_report.Table
module Strategy = Arc_vsched.Strategy

type opts = {
  reps : int;
  duration_s : float;
  sim_steps : int;
  quick : bool;
  seed : int;
}

let default = { reps = 3; duration_s = 0.2; sim_steps = 300_000; quick = false; seed = 1 }
let quick = { reps = 1; duration_s = 0.05; sim_steps = 40_000; quick = true; seed = 1 }

(* Grids ------------------------------------------------------------- *)

let real_threads opts = if opts.quick then [ 2; 4; 8 ] else [ 2; 4; 8; 16; 32 ]

let real_sizes opts =
  if opts.quick then [ ("4KB", Arc_workload.Payload.size_4kb) ]
  else Arc_workload.Payload.paper_sizes

(* Simulated sizes are scaled down (per-word scheduling points make a
   128KB copy 16384 steps); the copy-cost *ratios* between sizes are
   preserved, which is what the shape comparison needs. *)
let sim_sizes opts =
  if opts.quick then [ ("64w", 64) ] else [ ("64w", 64); ("512w", 512); ("2048w", 2048) ]

let sim_threads opts = if opts.quick then [ 2; 4 ] else [ 2; 4; 8; 16; 32 ]
let fig3_threads opts = if opts.quick then [ 16; 64 ] else [ 16; 64; 256; 1024; 4096 ]

(* Systhread time-sharing rotates 50ms quanta: joining k spinning
   threads costs up to k × 50ms, so the real-threads grid stays small
   (the 4096-thread regime lives in the simulator, fig3_sim). *)
let fig3_real_thread_counts opts = if opts.quick then [ 8; 32 ] else [ 8; 32; 128 ]

(* Runners ------------------------------------------------------------ *)

let mean_of f ~reps =
  let samples = Array.init (max reps 1) (fun _ -> f ()) in
  Arc_util.Stats.mean samples

let real_point (entry : Registry.entry) ~opts ~threads ~size ~workload ~steal =
  let cfg =
    {
      Config.default_real with
      Config.readers = threads - 1;
      size_words = size;
      duration_s = opts.duration_s;
      workload;
      steal;
      seed = opts.seed;
    }
  in
  mean_of ~reps:opts.reps (fun () ->
      (entry.Registry.run_real cfg).Config.total_throughput)

let sim_point (entry : Registry.entry) ~opts ~threads ~size ~steal =
  let cfg =
    {
      Config.default_sim with
      Config.sim_readers = threads - 1;
      sim_size_words = size;
      max_steps = opts.sim_steps;
      sim_workload = Config.Hold;
      sim_seed = opts.seed;
    }
  in
  let strategy =
    if steal then
      Strategy.steal ~seed:opts.seed
        ~base:(Strategy.random ~seed:(opts.seed + 1))
        ~probability:0.002 ~min_pause:200 ~max_pause:2_000
    else Strategy.random ~seed:opts.seed
  in
  let r = entry.Registry.run_sim ~strategy cfg in
  (* ops per 1000 simulated steps *)
  r.Config.total_throughput *. 1000.

let supports (entry : Registry.entry) ~readers ~size =
  match entry.Registry.max_readers ~capacity_words:size with
  | Some bound -> readers <= bound
  | None -> true

(* Figure builders ---------------------------------------------------- *)

let build_series ~title_of ~x_label ~sizes ~threads ~algos ~point =
  List.map
    (fun (size_name, size) ->
      let s = Series.create ~title:(title_of size_name) ~x_label in
      List.iter
        (fun t ->
          List.iter
            (fun (entry : Registry.entry) ->
              if supports entry ~readers:(t - 1) ~size then
                Series.add s ~series:entry.Registry.name ~x:(float_of_int t)
                  ~y:(point entry ~threads:t ~size))
            algos)
        threads;
      s)
    sizes

let fig1_real opts =
  build_series
    ~title_of:(fun sz ->
      Printf.sprintf "Fig.1 (real domains) — hold-model throughput, register %s" sz)
    ~x_label:"threads" ~sizes:(real_sizes opts) ~threads:(real_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size ->
      real_point entry ~opts ~threads ~size ~workload:Config.Hold ~steal:None)

let fig1_sim opts =
  build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.1 (simulated) — hold-model ops per 1000 steps, register %s" sz)
    ~x_label:"threads" ~sizes:(sim_sizes opts) ~threads:(sim_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size -> sim_point entry ~opts ~threads ~size ~steal:false)

let fig2_real opts =
  let steal = Some { Config.probability = 0.0005; pause_us = 200. } in
  build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.2 (real domains + steal injection) — hold-model throughput, register %s"
        sz)
    ~x_label:"threads" ~sizes:(real_sizes opts) ~threads:(real_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size ->
      real_point entry ~opts ~threads ~size ~workload:Config.Hold ~steal)

let fig2_sim opts =
  build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.2 (simulated CPU-steal) — hold-model ops per 1000 steps, register %s" sz)
    ~x_label:"threads" ~sizes:(sim_sizes opts) ~threads:(sim_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size -> sim_point entry ~opts ~threads ~size ~steal:true)

let fig3_algos () =
  (* RF cannot host these reader counts — excluded, as in the paper. *)
  [ Registry.find "arc"; Registry.find "peterson"; Registry.find "rwlock";
    Registry.find "seqlock" ]

let fig3_sim opts =
  build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.3 (simulated) — largely-increased thread counts, register %s" sz)
    ~x_label:"threads" ~sizes:(sim_sizes opts) ~threads:(fig3_threads opts)
    ~algos:(fig3_algos ())
    ~point:(fun entry ~threads ~size ->
      (* Budget grows with the fiber count so everyone gets scheduled. *)
      let opts = { opts with sim_steps = opts.sim_steps + (threads * 200) } in
      sim_point entry ~opts ~threads ~size ~steal:false)

let fig3_real_threads opts =
  build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.3 (real systhreads, time-shared) — throughput, register %s" sz)
    ~x_label:"threads"
    ~sizes:(if opts.quick then [ ("4KB", Arc_workload.Payload.size_4kb) ]
            else [ ("4KB", Arc_workload.Payload.size_4kb);
                   ("32KB", Arc_workload.Payload.size_32kb) ])
    ~threads:(fig3_real_thread_counts opts)
    ~algos:(fig3_algos ())
    ~point:(fun entry ~threads ~size ->
      let cfg =
        {
          Config.default_real with
          Config.readers = threads - 1;
          size_words = size;
          duration_s = opts.duration_s;
          workload = Config.Hold;
          seed = opts.seed;
          parallelism = `Threads;
        }
      in
      (* Single rep: the join alone dominates at high thread counts. *)
      (entry.Registry.run_real cfg).Config.total_throughput)

let rmw_table opts =
  let table =
    Table.create
      ~title:
        "E4 — RMW instructions and plain atomic loads per operation \
         (deterministic interleaving; r = reads per reader between writes)"
      ~columns:
        [ "algorithm"; "readers"; "r"; "rmw/read"; "rmw/write"; "loads/read";
          "words-copied/write" ]
  in
  let readerss = if opts.quick then [ 4 ] else [ 4; 16; 48 ] in
  let rpws = if opts.quick then [ 1; 8 ] else [ 1; 4; 16 ] in
  List.iter
    (fun (entry : Registry.entry) ->
      List.iter
        (fun readers ->
          if supports entry ~readers ~size:64 then
            List.iter
              (fun rpw ->
                let c =
                  entry.Registry.count ~readers ~size_words:64 ~rounds:100
                    ~reads_per_write:rpw
                in
                Table.add_row table
                  [
                    entry.Registry.name;
                    string_of_int readers;
                    string_of_int rpw;
                    Printf.sprintf "%.3f" c.Count_runner.rmw_per_read;
                    Printf.sprintf "%.3f" c.Count_runner.rmw_per_write;
                    Printf.sprintf "%.3f" c.Count_runner.atomic_loads_per_read;
                    Printf.sprintf "%.0f" c.Count_runner.word_writes_per_write;
                  ])
              rpws)
        readerss)
    Registry.all;
  table

(* E5: the §3.4 hint — measured slot probes per write with parked
   readers, plus hold-model throughput of the two variants. *)
module Arc_direct = Arc_core.Arc.Make (Arc_mem.Real_mem)
module P_direct = Arc_workload.Payload.Make (Arc_mem.Real_mem)

let probes_per_write ~use_hint ~readers ~writes =
  let capacity = 16 in
  let init = Array.make capacity 0 in
  P_direct.stamp init ~seq:0 ~len:capacity;
  let reg = Arc_direct.create_with ~use_hint ~readers ~capacity ~init in
  let handles = Array.init readers (Arc_direct.reader reg) in
  let src = Array.make capacity 0 in
  (* Park all but one reader on distinct old snapshots. *)
  for seq = 1 to readers do
    P_direct.stamp src ~seq ~len:capacity;
    Arc_direct.write reg ~src ~len:capacity;
    ignore (Arc_direct.read_with handles.(seq - 1) ~f:(fun _ _ -> ()))
  done;
  let before = Arc_direct.write_probes reg in
  for seq = readers + 1 to readers + writes do
    ignore (Arc_direct.read_with handles.(0) ~f:(fun _ _ -> ()));
    P_direct.stamp src ~seq ~len:capacity;
    Arc_direct.write reg ~src ~len:capacity
  done;
  float_of_int (Arc_direct.write_probes reg - before) /. float_of_int writes

let ablation_hint opts =
  let table =
    Table.create
      ~title:
        "E5 — §3.4 free-slot hint ablation: write-side slot probes per write \
         (parked readers) and hold-model throughput"
      ~columns:[ "variant"; "readers"; "probes/write"; "hold ops/s (3 readers)" ]
  in
  let readerss = if opts.quick then [ 8 ] else [ 8; 32; 128 ] in
  let throughput name =
    let entry = Registry.find name in
    let cfg =
      { Config.default_real with Config.duration_s = opts.duration_s; seed = opts.seed }
    in
    mean_of ~reps:opts.reps (fun () ->
        (entry.Registry.run_real cfg).Config.total_throughput)
  in
  let tp_hint = throughput "arc" and tp_nohint = throughput "arc-nohint" in
  List.iter
    (fun readers ->
      List.iter
        (fun (label, use_hint, tp) ->
          Table.add_row table
            [
              label;
              string_of_int readers;
              Printf.sprintf "%.2f" (probes_per_write ~use_hint ~readers ~writes:500);
              Printf.sprintf "%.3g" tp;
            ])
        [ ("arc (hint)", true, tp_hint); ("arc-nohint", false, tp_nohint) ])
    readerss;
  table

let processing_real opts =
  build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "E6 (real domains) — processing workload (writes generate, reads scan), \
         register %s"
        sz)
    ~x_label:"threads" ~sizes:(real_sizes opts) ~threads:(real_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size ->
      real_point entry ~opts ~threads ~size ~workload:Config.Processing ~steal:None)

(* E7: operation-latency distributions on real domains — the
   per-operation face of wait-freedom (complements the paper's
   throughput-only reporting). *)
let latency_table opts =
  let table =
    Table.create
      ~title:
        "E7 — read latency distribution on real domains (Verify workload, \
         3 readers, 4KB register; microseconds)"
      ~columns:[ "algorithm"; "reads"; "mean µs"; "p99 µs"; "max µs" ]
  in
  List.iter
    (fun (entry : Registry.entry) ->
      let readers =
        match entry.Registry.max_readers ~capacity_words:512 with
        | Some bound -> min bound 3
        | None -> 3
      in
      let cfg =
        {
          Config.default_real with
          Config.readers;
          size_words = 512;
          duration_s = opts.duration_s;
          workload = Config.Verify;
          record = 200_000;
          seed = opts.seed;
        }
      in
      let result = entry.Registry.run_real cfg in
      match result.Config.history with
      | None -> ()
      | Some h ->
        let audit = Arc_trace.Audit.of_history h in
        let reads = audit.Arc_trace.Audit.reads in
        let us ns = ns /. 1e3 in
        Table.add_row table
          [
            entry.Registry.name;
            string_of_int reads.Arc_trace.Audit.count;
            Printf.sprintf "%.2f" (us reads.Arc_trace.Audit.mean_duration);
            Printf.sprintf "%.2f" (us reads.Arc_trace.Audit.p99_duration);
            Printf.sprintf "%.2f"
              (us (float_of_int reads.Arc_trace.Audit.max_duration));
          ])
    Registry.all;
  table

(* E8: the dynamic-allocation variant's memory footprint under
   different snapshot-size distributions. *)
module Arc_dyn = Arc_core.Arc_dynamic.Make (Arc_mem.Real_mem)

let ablation_dynamic _opts =
  let table =
    Table.create
      ~title:
        "E8 — dynamic buffer allocation (§3.3 note): memory footprint vs static \
         ARC (3 readers, capacity 16384 words, 2000 writes)"
      ~columns:
        [ "size distribution"; "static words"; "dynamic words"; "reallocs/write" ]
  in
  let readers = 3 in
  let capacity = 16384 in
  let static_words = (readers + 2) * capacity in
  let run_distribution name sample =
    let rng = Arc_util.Splitmix.of_int 11 in
    let reg = Arc_dyn.create ~readers ~capacity ~init:[| 0 |] in
    let handles = Array.init readers (Arc_dyn.reader reg) in
    let src = Array.make capacity 0 in
    let writes = 2000 in
    for _ = 1 to writes do
      let len = sample rng in
      P_direct.stamp src ~seq:1 ~len;
      Arc_dyn.write reg ~src ~len;
      (* a reader occasionally follows, cycling the slots *)
      if Arc_util.Splitmix.bernoulli rng 0.5 then
        ignore
          (Arc_dyn.read_with handles.(Arc_util.Splitmix.int rng readers)
             ~f:(fun _ _ -> ()))
    done;
    Table.add_row table
      [
        name;
        string_of_int static_words;
        string_of_int (Arc_dyn.footprint_words reg);
        Printf.sprintf "%.3f"
          (float_of_int (Arc_dyn.reallocations reg) /. float_of_int writes);
      ]
  in
  run_distribution "constant 256w" (fun _ -> 256);
  run_distribution "uniform 1..512w" (fun rng -> 1 + Arc_util.Splitmix.int rng 512);
  run_distribution "bimodal 64w/16384w" (fun rng ->
      if Arc_util.Splitmix.bernoulli rng 0.95 then 64 else capacity);
  table

(* Measurement-noise quantification: repeat one canonical point many
   times and report dispersion, so EXPERIMENTS.md can state how much
   of any real-mode gap is noise. *)
let variability_table opts =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Measurement variability — hold model, 3+1 threads, 4KB register, \
            %d repetitions per algorithm"
           (max (opts.reps * 3) 8))
      ~columns:[ "algorithm"; "mean ops/s"; "stddev"; "CV %"; "min"; "max" ]
  in
  let reps = max (opts.reps * 3) 8 in
  List.iter
    (fun (entry : Registry.entry) ->
      let cfg =
        {
          Config.default_real with
          Config.readers = 3;
          size_words = Arc_workload.Payload.size_4kb;
          duration_s = opts.duration_s;
          seed = opts.seed;
        }
      in
      let samples =
        Array.init reps (fun _ ->
            (entry.Registry.run_real cfg).Config.total_throughput)
      in
      let s = Arc_util.Stats.summarize samples in
      Table.add_row table
        [
          entry.Registry.name;
          Printf.sprintf "%.3g" s.Arc_util.Stats.mean;
          Printf.sprintf "%.3g" s.Arc_util.Stats.stddev;
          Printf.sprintf "%.1f"
            (100. *. s.Arc_util.Stats.stddev /. s.Arc_util.Stats.mean);
          Printf.sprintf "%.3g" s.Arc_util.Stats.min;
          Printf.sprintf "%.3g" s.Arc_util.Stats.max;
        ])
    Registry.paper_set;
  table

(* Output ------------------------------------------------------------- *)

let dump_csv ~out_dir ~name contents =
  match out_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir (name ^ ".csv")) in
    output_string oc contents;
    close_out oc

let print_series ~out_dir ~stem series_list =
  List.iteri
    (fun i s ->
      Table.print (Series.to_table s);
      print_newline ();
      print_string (Series.render_chart s);
      print_newline ();
      dump_csv ~out_dir ~name:(Printf.sprintf "%s_%d" stem i) (Series.to_csv s))
    series_list

let run_all opts ~out_dir =
  Printf.printf "platform: %s\n\n" (Arc_util.Cpu.describe ());
  let section name = Printf.printf "==== %s ====\n%!" name in
  section "E1 Fig.1 (real)";
  print_series ~out_dir ~stem:"fig1_real" (fig1_real opts);
  section "E1 Fig.1 (sim)";
  print_series ~out_dir ~stem:"fig1_sim" (fig1_sim opts);
  section "E2 Fig.2 (real + steal)";
  print_series ~out_dir ~stem:"fig2_real" (fig2_real opts);
  section "E2 Fig.2 (sim + steal)";
  print_series ~out_dir ~stem:"fig2_sim" (fig2_sim opts);
  section "E3 Fig.3 (sim, huge thread counts)";
  print_series ~out_dir ~stem:"fig3_sim" (fig3_sim opts);
  section "E3 Fig.3 (real systhreads)";
  print_series ~out_dir ~stem:"fig3_real" (fig3_real_threads opts);
  section "E4 RMW table";
  let t = rmw_table opts in
  Table.print t;
  dump_csv ~out_dir ~name:"rmw_table" (Table.to_csv t);
  section "E5 hint ablation";
  let t = ablation_hint opts in
  Table.print t;
  dump_csv ~out_dir ~name:"ablation_hint" (Table.to_csv t);
  section "E6 processing workload";
  print_series ~out_dir ~stem:"processing" (processing_real opts);
  section "E7 read-latency distributions";
  let t = latency_table opts in
  Table.print t;
  dump_csv ~out_dir ~name:"latency" (Table.to_csv t);
  section "E8 dynamic-allocation footprint";
  let t = ablation_dynamic opts in
  Table.print t;
  dump_csv ~out_dir ~name:"ablation_dynamic" (Table.to_csv t)

lib/harness/count_runner.mli: Arc_core Arc_mem Format

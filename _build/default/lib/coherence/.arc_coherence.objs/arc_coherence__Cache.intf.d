lib/coherence/cache.mli: Format

(* Telemetry hub — the (M,N) extension in action.

   M sensor threads each publish their latest reading burst into a
   multi-writer register built from ARC (1,N) registers (the paper's
   §1 "building block" claim, lib/mrmw); N dashboard threads read the
   globally most recent burst.  Timestamps observed by each dashboard
   are monotone: the construction is atomic.

     dune exec examples/telemetry_hub.exe *)

module Hub = Arc_mrmw.Mn_register.Make (Arc_core.Arc) (Arc_mem.Real_mem)

let burst_words = 16

let () =
  let sensors = 3 in
  let dashboards = 2 in
  let rounds = 5_000 in
  let hub =
    Hub.create ~writers:sensors ~readers:dashboards ~capacity:burst_words
      ~init:(Array.make burst_words 0)
  in
  let stop = Atomic.make false in

  let sensor id () =
    let w = Hub.writer hub id in
    let src = Array.make burst_words 0 in
    for round = 1 to rounds do
      (* A burst: sensor id, round, then simulated samples. *)
      src.(0) <- id;
      src.(1) <- round;
      for i = 2 to burst_words - 1 do
        src.(i) <- (id * 1_000_000) + (round * 100) + i
      done;
      Hub.write w ~src ~len:burst_words
    done
  in

  let dashboard id () =
    let rd = Hub.reader hub id in
    let dst = Array.make burst_words 0 in
    let reads = ref 0 in
    let regressions = ref 0 in
    let last_ts = ref (-1) in
    (* Keep going until the sensors are done AND this dashboard has
       actually sampled the hub a few times (domains may be scheduled
       late on small machines). *)
    while (not (Atomic.get stop)) || !reads < 1000 do
      incr reads;
      let len = Hub.read_into rd ~dst in
      assert (len = burst_words || len = burst_words (* init *));
      let ts = Hub.last_timestamp rd in
      if ts < !last_ts then incr regressions;
      last_ts := ts
    done;
    Printf.printf
      "dashboard %d: %d reads, final timestamp %d, %d monotonicity regressions\n"
      id !reads !last_ts !regressions;
    assert (!regressions = 0)
  in

  let sensor_domains = List.init sensors (fun i -> Domain.spawn (sensor i)) in
  let dash_domains = List.init dashboards (fun i -> Domain.spawn (dashboard i)) in
  List.iter Domain.join sensor_domains;
  Atomic.set stop true;
  List.iter Domain.join dash_domains;
  Printf.printf "telemetry_hub: %d sensors x %d bursts fanned out to %d dashboards\n"
    sensors rounds dashboards

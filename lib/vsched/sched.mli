(** Deterministic cooperative scheduler for virtual threads (fibers),
    built on OCaml 5 effects.

    This is the repository's stand-in for the paper's large multicore
    testbeds (DESIGN.md §2): register algorithms instantiated over
    {!Sim_mem} yield to the scheduler at {e every shared-memory
    access}, so

    - a strategy ({!Strategy.t}) fully controls the interleaving —
      thousands of seeded schedules per test, plus adversarial
      (starvation, CPU-steal) schedules;
    - executions are deterministic and replayable from a seed;
    - thousands of fibers are cheap, enabling the paper's Fig. 3
      regime (up to 4000 threads) on any machine;
    - simulated time = weighted count of shared-memory accesses
      (an RMW costs {!Sim_mem.rmw_weight} plain accesses), so
      "throughput" in simulation is ops per simulated step, a cost
      model matching the paper's RMW-centric accounting.

    The scheduler runs on the calling domain; nothing here is
    parallel.  A fiber that raises terminates the whole run with that
    exception (after which the scheduler is unusable), which is what
    the test suites want. *)

type t

type outcome = {
  steps : int;  (** weighted scheduling points consumed *)
  completed : int;  (** fibers that ran to completion *)
  unfinished : int;  (** fibers still alive when the budget ran out *)
}

val run :
  ?max_steps:int ->
  strategy:Strategy.t ->
  (unit -> unit) array ->
  outcome
(** [run ~max_steps ~strategy fibers] executes the fibers under the
    strategy until all complete or the weighted step budget is
    exhausted (default: no budget).  Must not be called from inside a
    fiber. *)

(** {2 Called from inside fibers} *)

val cede : ?weight:int -> unit -> unit
(** Offer a scheduling point of the given cost (default 1).  Outside
    any scheduler this is a no-op, so code instrumented with [cede]
    also runs standalone. *)

val sleep : int -> unit
(** [sleep d] suspends the calling fiber for [d] simulated steps: it
    leaves the runnable set and is woken once the run's step count
    reaches [now () + d], regardless of the strategy.  The fault layer
    uses this to model a thread stalled by the OS or hypervisor
    (ISSUE 2); unlike a strategy-driven {!Strategy.steal} postponement
    it is part of the {e scenario}, so it replays deterministically
    under {!Explore.exhaustive} and {!Replay}.  [d <= 0] and calls
    outside a scheduler are no-ops. *)

val self : unit -> int
(** Id of the running fiber (its index in the [run] array).
    @raise Failure outside a fiber. *)

val current_fiber : unit -> int option
(** Like {!self} but [None] outside a fiber. *)

val now : unit -> int
(** Current weighted step count of the enclosing run; 0 outside. *)

val fiber_count : unit -> int
(** Number of fibers in the enclosing run; 0 outside. *)

(** Instrumentation functor: wraps any {!Mem_intf.S} instance and
    counts operations by class, with one counter cell per domain
    (registered through [Domain.DLS]) so that counting perturbs the
    measured algorithms as little as possible and never misses
    cross-domain increments.

    This instance powers experiment E4: the paper attributes ARC's
    advantage over RF to executing {e fewer RMW instructions} on the
    read path (§1, §5); wrapping both algorithms in [Counting] turns
    that argument into measured per-operation counts. *)

module Make (M : Mem_intf.S) = struct
  let name = "counting(" ^ M.name ^ ")"

  type cell = {
    mutable rmw : int;
    mutable atomic_load : int;
    mutable atomic_store : int;
    mutable word_read : int;
    mutable word_write : int;
  }

  let registry : cell list ref = ref []
  let registry_lock = Mutex.create ()

  let fresh_cell () =
    let c =
      { rmw = 0; atomic_load = 0; atomic_store = 0; word_read = 0; word_write = 0 }
    in
    Mutex.lock registry_lock;
    registry := c :: !registry;
    Mutex.unlock registry_lock;
    c

  let key = Domain.DLS.new_key fresh_cell
  let cell () = Domain.DLS.get key

  let counts () =
    Mutex.lock registry_lock;
    let cells = !registry in
    Mutex.unlock registry_lock;
    List.fold_left
      (fun acc c ->
        Mem_intf.add_counts acc
          {
            Mem_intf.rmw = c.rmw;
            atomic_load = c.atomic_load;
            atomic_store = c.atomic_store;
            word_read = c.word_read;
            word_write = c.word_write;
          })
      Mem_intf.zero_counts cells

  let reset () =
    Mutex.lock registry_lock;
    List.iter
      (fun c ->
        c.rmw <- 0;
        c.atomic_load <- 0;
        c.atomic_store <- 0;
        c.word_read <- 0;
        c.word_write <- 0)
      !registry;
    Mutex.unlock registry_lock

  type atomic = M.atomic

  let atomic = M.atomic

  (* Allocation is not an operation class; contended cells count
     exactly like plain ones, so layout changes never skew E4. *)
  let atomic_contended = M.atomic_contended
  let atomic_contended_pair = M.atomic_contended_pair

  let load a =
    (cell ()).atomic_load <- (cell ()).atomic_load + 1;
    M.load a

  let store a v =
    (cell ()).atomic_store <- (cell ()).atomic_store + 1;
    M.store a v

  let count_rmw () =
    let c = cell () in
    c.rmw <- c.rmw + 1

  let exchange a v =
    count_rmw ();
    M.exchange a v

  let add_and_fetch a k =
    count_rmw ();
    M.add_and_fetch a k

  let fetch_and_add a k =
    count_rmw ();
    M.fetch_and_add a k

  let incr a =
    count_rmw ();
    M.incr a

  let compare_and_set a old v =
    count_rmw ();
    M.compare_and_set a old v

  (* Emulate fetch_and_or/and on top of the counted CAS so every retry
     is charged as one RMW, matching what the hardware would issue. *)
  let rec fetch_and_or a mask =
    let old = load a in
    if compare_and_set a old (old lor mask) then old else fetch_and_or a mask

  let rec fetch_and_and a mask =
    let old = load a in
    if compare_and_set a old (old land mask) then old
    else fetch_and_and a mask

  type buffer = M.buffer

  let alloc = M.alloc
  let capacity = M.capacity

  let write_words buf ~src ~len =
    let c = cell () in
    c.word_write <- c.word_write + len;
    M.write_words buf ~src ~len

  let read_word buf i =
    let c = cell () in
    c.word_read <- c.word_read + 1;
    M.read_word buf i

  let read_words buf ~dst ~len =
    let c = cell () in
    c.word_read <- c.word_read + len;
    M.read_words buf ~dst ~len

  let blit src dst ~len =
    let c = cell () in
    c.word_read <- c.word_read + len;
    c.word_write <- c.word_write + len;
    M.blit src dst ~len

  let cede = M.cede
end

(** Throughput figures (E1–E3, E6): Fig. 1 hold-model scaling, Fig. 2
    CPU-steal, Fig. 3 largely-increased thread counts, and the E6
    processing workload.  Algorithm sets are selected by {e capability}
    ({!Registry.supporting}) against each figure's design grid, not by
    hard-coded name lists. *)

let fig1_real opts =
  Grid.build_series
    ~title_of:(fun sz ->
      Printf.sprintf "Fig.1 (real domains) — hold-model throughput, register %s" sz)
    ~x_label:"threads" ~sizes:(Grid.real_sizes opts) ~threads:(Grid.real_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size ->
      Grid.real_point entry ~opts ~threads ~size ~workload:Config.Hold ~steal:None)

let fig1_sim opts =
  Grid.build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.1 (simulated) — hold-model ops per 1000 steps, register %s" sz)
    ~x_label:"threads" ~sizes:(Grid.sim_sizes opts) ~threads:(Grid.sim_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size ->
      Grid.sim_point entry ~opts ~threads ~size ~steal:false)

let fig2_real opts =
  let steal = Some { Config.probability = 0.0005; pause_us = 200. } in
  Grid.build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.2 (real domains + steal injection) — hold-model throughput, register %s"
        sz)
    ~x_label:"threads" ~sizes:(Grid.real_sizes opts) ~threads:(Grid.real_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size ->
      Grid.real_point entry ~opts ~threads ~size ~workload:Config.Hold ~steal)

let fig2_sim opts =
  Grid.build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.2 (simulated CPU-steal) — hold-model ops per 1000 steps, register %s" sz)
    ~x_label:"threads" ~sizes:(Grid.sim_sizes opts) ~threads:(Grid.sim_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size ->
      Grid.sim_point entry ~opts ~threads ~size ~steal:true)

(* Fig. 3 candidates: the paper set plus seqlock, filtered by whether
   the capability record admits the figure's *design* thread count —
   the grid maximum at full scale, regardless of --quick, so the
   series set is stable across quick and full runs.  RF's word-size
   reader bound (~57 on 63-bit words) always drops it here, matching
   the paper's own exclusion. *)
let fig3_algos ~max_threads ~capacity_words =
  Registry.supporting ~readers:(max_threads - 1) ~capacity_words
    (Registry.paper_set @ [ Registry.find "seqlock" ])

let fig3_design_threads = 4096 (* full fig3_threads grid maximum *)
let fig3_real_design_threads = 128 (* full fig3_real_thread_counts maximum *)

let fig3_sim opts =
  Grid.build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.3 (simulated) — largely-increased thread counts, register %s" sz)
    ~x_label:"threads" ~sizes:(Grid.sim_sizes opts) ~threads:(Grid.fig3_threads opts)
    ~algos:(fig3_algos ~max_threads:fig3_design_threads ~capacity_words:2048)
    ~point:(fun entry ~threads ~size ->
      (* Budget grows with the fiber count so everyone gets scheduled. *)
      let opts = { opts with Grid.sim_steps = opts.Grid.sim_steps + (threads * 200) } in
      Grid.sim_point entry ~opts ~threads ~size ~steal:false)

let fig3_real_threads opts =
  Grid.build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "Fig.3 (real systhreads, time-shared) — throughput, register %s" sz)
    ~x_label:"threads"
    ~sizes:(if opts.Grid.quick then [ ("4KB", Arc_workload.Payload.size_4kb) ]
            else [ ("4KB", Arc_workload.Payload.size_4kb);
                   ("32KB", Arc_workload.Payload.size_32kb) ])
    ~threads:(Grid.fig3_real_thread_counts opts)
    ~algos:
      (fig3_algos ~max_threads:fig3_real_design_threads
         ~capacity_words:Arc_workload.Payload.size_32kb)
    ~point:(fun entry ~threads ~size ->
      let cfg =
        {
          Config.default_real with
          Config.readers = threads - 1;
          size_words = size;
          duration_s = opts.Grid.duration_s;
          workload = Config.Hold;
          seed = opts.Grid.seed;
          parallelism = `Threads;
        }
      in
      (* Single rep: the join alone dominates at high thread counts. *)
      (entry.Registry.run_real cfg).Config.total_throughput)

let processing_real opts =
  Grid.build_series
    ~title_of:(fun sz ->
      Printf.sprintf
        "E6 (real domains) — processing workload (writes generate, reads scan), \
         register %s"
        sz)
    ~x_label:"threads" ~sizes:(Grid.real_sizes opts) ~threads:(Grid.real_threads opts)
    ~algos:Registry.paper_set
    ~point:(fun entry ~threads ~size ->
      Grid.real_point entry ~opts ~threads ~size ~workload:Config.Processing
        ~steal:None)

lib/core/typed.ml: Arc_mem Array Register_intf

(* Word-index hash: any fixed injective-looking mixing works; this is
   the SplitMix64 increment with a squaring mix, truncated to the
   OCaml int range by the arithmetic itself. *)
let h i =
  let x = (i + 1) * 0x9E3779B97F4A7C1 in
  x lxor (x lsr 31)

module Make (M : Arc_mem.Mem_intf.S) = struct
  let stamp src ~seq ~len =
    if seq < 0 then invalid_arg "Payload.stamp: negative seq";
    if len < 1 || len > Array.length src then invalid_arg "Payload.stamp: bad length";
    for i = 0 to len - 1 do
      src.(i) <- seq lxor h i
    done

  let decode_seq buffer = M.read_word buffer 0 lxor h 0

  let validate buffer ~len =
    if len < 1 then Error "empty snapshot"
    else begin
      let seq = decode_seq buffer in
      let rec go i =
        if i >= len then Ok seq
        else begin
          let w = M.read_word buffer i in
          if w lxor h i <> seq then
            Error
              (Printf.sprintf "torn snapshot: word %d claims seq %d, word 0 claims %d"
                 i (w lxor h i) seq)
          else go (i + 1)
        end
      in
      go 1
    end

  let decode_words words = words.(0) lxor h 0

  let validate_words words ~len =
    if len < 1 || len > Array.length words then Error "empty snapshot"
    else begin
      let seq = words.(0) lxor h 0 in
      let rec go i =
        if i >= len then Ok seq
        else if words.(i) lxor h i <> seq then
          Error
            (Printf.sprintf "torn snapshot: word %d claims seq %d, word 0 claims %d" i
               (words.(i) lxor h i) seq)
        else go (i + 1)
      in
      go 1
    end

  let scan buffer ~len =
    let acc = ref 0 in
    for i = 0 to len - 1 do
      acc := !acc + M.read_word buffer i
    done;
    !acc
end

let size_4kb = 4 * 1024 / 8
let size_32kb = 32 * 1024 / 8
let size_128kb = 128 * 1024 / 8

let paper_sizes = [ ("4KB", size_4kb); ("32KB", size_32kb); ("128KB", size_128kb) ]

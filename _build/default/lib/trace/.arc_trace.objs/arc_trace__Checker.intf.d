lib/trace/checker.mli: Format History

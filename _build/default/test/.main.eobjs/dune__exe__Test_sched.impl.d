test/test_sched.ml: Alcotest Arc_vsched Array Atomic List Printf

let algorithm = "rwlock"

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type t = { lock : M.atomic; size : M.atomic; content : M.buffer; readers : int }
  type reader = t

  let algorithm = algorithm

  let caps =
    {
      Arc_core.Register_intf.wait_free = false;
      zero_copy = true (* the callback runs on the shared buffer, inside the lock *);
      max_readers = (fun ~capacity_words:_ -> None);
      snapshot_read = false;
    }

  let create ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Rwlock_reg.create: need at least one reader";
    if capacity < 1 then invalid_arg "Rwlock_reg.create: capacity must be positive";
    if Array.length init > capacity then invalid_arg "Rwlock_reg.create: init too long";
    let reg =
      (* Every acquire/release CASes the lock word: own line. *)
      { lock = M.atomic_contended 0; size = M.atomic 0; content = M.alloc capacity;
        readers }
    in
    M.write_words reg.content ~src:init ~len:(Array.length init);
    M.store reg.size (Array.length init);
    reg

  let reader reg i =
    if i < 0 || i >= reg.readers then
      invalid_arg "Rwlock_reg.reader: identity out of range";
    reg

  let rec read_lock reg =
    let v = M.load reg.lock in
    if v >= 0 && M.compare_and_set reg.lock v (v + 1) then ()
    else begin
      M.cede ();
      read_lock reg
    end

  let rec read_unlock reg =
    let v = M.load reg.lock in
    if M.compare_and_set reg.lock v (v - 1) then ()
    else begin
      M.cede ();
      read_unlock reg
    end

  let rec write_lock reg =
    if M.compare_and_set reg.lock 0 (-1) then ()
    else begin
      M.cede ();
      write_lock reg
    end

  let write_unlock reg = M.store reg.lock 0

  let read_with reg ~f =
    read_lock reg;
    (* The buffer is only stable while the read lock is held, so the
       consumer runs inside the critical section. *)
    let result =
      match f reg.content (M.load reg.size) with
      | v -> v
      | exception e ->
        read_unlock reg;
        raise e
    in
    read_unlock reg;
    result

  let read_into reg ~dst =
    read_with reg ~f:(fun buffer len ->
        if Array.length dst < len then
          invalid_arg "Rwlock_reg.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  let write reg ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Rwlock_reg.write: bad length";
    if len > M.capacity reg.content then invalid_arg "Rwlock_reg.write: exceeds capacity";
    write_lock reg;
    M.write_words reg.content ~src ~len;
    M.store reg.size len;
    write_unlock reg
end

test/test_schedules.ml: Alcotest Arc_harness Arc_trace Arc_vsched Broken_regs List Printf

module History = Arc_trace.History
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

module Make (R : Arc_core.Register_intf.S) = struct
  module P = Arc_workload.Payload.Make (R.Mem)

  type out = { mutable ops : int; mutable torn : int }

  let reader_fiber ~reg ~id ~(cfg : Config.sim) ~recorder ~out () =
    let rd = R.reader reg id in
    let record kind seq invoked returned =
      match recorder with
      | None -> ()
      | Some r ->
        History.Recorder.record r ~thread:(id + 1) kind ~seq ~invoked ~returned
    in
    while Sched.now () < cfg.max_steps do
      (match cfg.sim_workload with
      | Config.Hold -> R.read_with rd ~f:(fun _buffer _len -> ())
      | Config.Processing ->
        let (_ : int) = R.read_with rd ~f:(fun buffer len -> P.scan buffer ~len) in
        ()
      | Config.Verify ->
        let invoked = Sched.now () in
        let seq =
          R.read_with rd ~f:(fun buffer len ->
              match P.validate buffer ~len with
              | Ok seq -> seq
              | Error _ ->
                out.torn <- out.torn + 1;
                P.decode_seq buffer)
        in
        record History.Read seq invoked (Sched.now ()));
      out.ops <- out.ops + 1;
      (* Even a zero-shared-access iteration must make simulated time
         advance, or a fast-path loop would never yield. *)
      Sched.cede ()
    done

  let writer_fiber ~reg ~(cfg : Config.sim) ~recorder ~out () =
    let size = cfg.sim_size_words in
    let src = Array.make size 0 in
    let record seq invoked returned =
      match recorder with
      | None -> ()
      | Some r ->
        History.Recorder.record r ~thread:0 History.Write ~seq ~invoked ~returned
    in
    P.stamp src ~seq:0 ~len:size;
    let seq = ref 0 in
    while Sched.now () < cfg.max_steps do
      (match cfg.sim_workload with
      | Config.Hold -> R.write reg ~src ~len:size
      | Config.Processing ->
        incr seq;
        P.stamp src ~seq:!seq ~len:size;
        R.write reg ~src ~len:size
      | Config.Verify ->
        incr seq;
        P.stamp src ~seq:!seq ~len:size;
        let invoked = Sched.now () in
        R.write reg ~src ~len:size;
        record !seq invoked (Sched.now ()));
      out.ops <- out.ops + 1;
      Sched.cede ()
    done

  (* [prepare] runs on the freshly created register before any fiber
     starts — the attach point for telemetry, which must be wired
     before reader handles are created. *)
  let run ?prepare ?strategy (cfg : Config.sim) : Config.result =
    if cfg.sim_readers < 1 then invalid_arg "Sim_runner.run: need at least one reader";
    if cfg.sim_size_words < 1 then invalid_arg "Sim_runner.run: empty register";
    if cfg.max_steps < 1 then invalid_arg "Sim_runner.run: no step budget";
    (match R.caps.Arc_core.Register_intf.max_readers ~capacity_words:cfg.sim_size_words with
    | Some bound when cfg.sim_readers > bound ->
      invalid_arg
        (Printf.sprintf "Sim_runner.run: %s supports at most %d readers" R.algorithm
           bound)
    | _ -> ());
    let strategy =
      match strategy with
      | Some s -> s
      | None -> Strategy.random ~seed:cfg.sim_seed
    in
    let init = Array.make cfg.sim_size_words 0 in
    P.stamp init ~seq:0 ~len:cfg.sim_size_words;
    let reg = R.create ~readers:cfg.sim_readers ~capacity:cfg.sim_size_words ~init in
    (match prepare with Some f -> f reg | None -> ());
    let recorder =
      if cfg.sim_record > 0 then
        Some
          (History.Recorder.create ~threads:(cfg.sim_readers + 1)
             ~capacity:cfg.sim_record)
      else None
    in
    let outs = Array.init (cfg.sim_readers + 1) (fun _ -> { ops = 0; torn = 0 }) in
    let fibers =
      Array.init (cfg.sim_readers + 1) (fun i ->
          if i = 0 then writer_fiber ~reg ~cfg ~recorder ~out:outs.(0)
          else reader_fiber ~reg ~id:(i - 1) ~cfg ~recorder ~out:outs.(i))
    in
    (* Fibers self-terminate at their loop tops, but a fiber of a
       non-wait-free algorithm can be spinning inside an operation
       (e.g. on a lock whose holder an unfair strategy never
       reschedules).  The hard backstop bounds such livelocks; in
       clean runs it never triggers. *)
    let backstop = (cfg.max_steps * 3) + 100_000 in
    let outcome = Sched.run ~max_steps:backstop ~strategy fibers in
    let reads = ref 0 and torn = ref 0 in
    Array.iteri (fun i o -> if i > 0 then reads := !reads + o.ops) outs;
    Array.iter (fun o -> torn := !torn + o.torn) outs;
    let history = Option.map History.Recorder.history recorder in
    let dropped =
      match recorder with None -> 0 | Some r -> History.Recorder.dropped r
    in
    Config.mk_result ~reads:!reads ~writes:outs.(0).ops
      ~duration:(float_of_int outcome.Sched.steps) ~torn:!torn ~history
      ~dropped_events:dropped
end

(* Chaos soak for the supervised register service (ISSUE 3).

   Composes the whole resilience stack — {!Fenced} epoch fencing,
   {!Supervisor} heartbeat failover, {!Session} deadline/backoff/
   breaker reads — over a fault-injecting simulated register
   ([Arc] over {!Arc_fault.Campaign.Mem}) and soaks it through many
   seeded randomized scenarios:

   - fiber 0 is the incumbent writer: it may crash at a random access,
     crash mid-copy (torn slot), or turn {e zombie} — pause between
     writes for several leases (a GC/OS pause), get deposed, and have
     its post-fence write rejected by [Fenced_out];
   - fiber 1 is the standby: it polls the supervisor, promotes itself
     once the lease expires, learns the last published value through a
     spare reader handle, and continues the write sequence (it can be
     stalled to model a supervisor outage);
   - fibers 2.. are deadline-aware reader sessions; the read path
     additionally suffers {e injected transient saturation} (a seeded
     probability of {!Register_intf.Saturated} per live read, standing
     in for the capacity/revocation guards that are — by design —
     nearly unreachable in healthy runs), which drives the retry,
     breaker and stale-serve machinery at scale.

   Every run is judged: no torn snapshots, crash-aware atomicity with
   the promotion time as the fence ({!Checker.check_crash} [?fence]),
   every degraded serve within the declared staleness bound
   ({!Checker.check_bounded_staleness}), liveness (no fiber left
   unfinished, no surviving reader starved) and the ARC presence-ledger
   audit on the quiescent final state.  A failing run prints nothing
   by itself but carries its seed; {!replay_command} renders the exact
   command line that reproduces it.

   Fault soundness.  Mid-write writer stalls are drawn strictly below
   half the lease, so a live writer is never deposed while it sits
   between the epoch-guard load and the publish exchange — the
   residual window of {!Fenced} — matching the lease discipline
   documented in DESIGN.md §6c.  Zombie pauses, which do exceed the
   lease, are taken {e between} writes, where the entry epoch check
   fences the returnee before it touches the register.  The
   {!unfenced_control} shows the same handoff without fencing is
   convicted by the checker — the negative control that proves the
   fence is load-bearing. *)

module Splitmix = Arc_util.Splitmix
module Outcomes = Arc_util.Stats.Outcomes
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module History = Arc_trace.History
module Checker = Arc_trace.Checker
module Fault_plan = Arc_fault.Fault_plan
module Mem = Arc_fault.Campaign.Mem
module R = Arc_core.Arc.Make (Mem)
module Sup = Supervisor.Make (R)
module F = Sup.Fenced_reg
module P = Arc_workload.Payload.Make (Mem)

(* Injected transient read failures: each live read fails with the
   run's probability, drawn from one seeded stream (deterministic
   because the schedule itself is).  Wrapping the register — rather
   than patching the session — keeps the session code honest: it
   retries exactly what a real register would throw at it.

   The failure itself is no longer a hand-written string (ISSUE 8): it
   is produced by a {e real} admission-gate refusal — a module-level
   single-slot {!Admission.Pool} whose one ticket is permanently held,
   so every injection runs the production scan, takes the production
   [Backpressured] verdict (ticking the gate's backpressured counter),
   and raises through the production saturation constructor.  What the
   session retries against is therefore message-for-message what a
   saturated register would throw at it. *)
module Flaky = struct
  include R

  let gate = Admission.Pool.create ~capacity:1 ()

  let () =
    match Admission.Pool.admit gate ~now:0 with
    | Arc_core.Register_intf.Admitted _ -> ()
    | Arc_core.Register_intf.Backpressured _ ->
      assert false (* a fresh one-slot pool always admits *)

  let rate = ref 0.
  let rng = ref (Splitmix.of_int 0)

  let set ~seed ~rate:r =
    rate := r;
    rng := Splitmix.of_int seed

  let read_with rd ~f =
    (if !rate > 0. && Splitmix.bernoulli !rng !rate then
       match Admission.Pool.admit gate ~now:(Sched.now ()) with
       | Arc_core.Register_intf.Admitted _ -> assert false (* held forever *)
       | Arc_core.Register_intf.Backpressured bp ->
         Arc_util.Saturation.raise_saturated ~who:"Soak.Flaky.read (injected)"
           ~count:(bp.Arc_core.Register_intf.live + 1)
           ~bound:(Admission.Pool.capacity gate));
    R.read_with rd ~f

  let injected () = Arc_obs.Obs.Admission.backpressured_count (Admission.Pool.events gate)
end

module S = Session.Make (Flaky)

type cfg = {
  runs : int;
  seed : int;
  readers : int;
  size_words : int;
  max_steps : int;  (** per run; fibers self-terminate past this *)
  lease : int;  (** writer lease, in simulated steps *)
  deadline : int;  (** per-read budget, in simulated steps *)
  max_stale : int;  (** oldest snapshot a session may serve, in steps *)
  max_crash_readers : int;
}

let default =
  {
    runs = 50;
    seed = 2025;
    readers = 3;
    size_words = 16;
    max_steps = 30_000;
    lease = 2_000;
    deadline = 1_500;
    max_stale = 6_000;
    max_crash_readers = 2;
  }

(* The declared bounded-staleness contract, in writes.  A serve at time
   [t] returns a snapshot captured by a live read invoked at
   [t - max_stale - D] at the earliest, where [D] bounds that read's
   own duration (~3 passes over the snapshot).  Every write costs at
   least [size_words] simulated steps (its content copy alone), so the
   writes that completed in the window number at most
   [(max_stale + D) / size_words] plus small slack for the in-flight
   write at each end — rounded up into a margin of 10. *)
let staleness_bound cfg = (cfg.max_stale / cfg.size_words) + 10

(* {1 Scenarios} *)

type fate =
  | Healthy
  | Crash  (** writer crashes at a random access *)
  | Tear  (** writer crashes mid-copy, tearing the slot *)
  | Zombie of { after : int; pause : int }
      (** writer pauses [pause] steps after its [after]-th write *)

let fate_name = function
  | Healthy -> "healthy"
  | Crash -> "crash"
  | Tear -> "tear"
  | Zombie _ -> "zombie"

type scenario = {
  fate : fate;
  plan : Fault_plan.t;
  flaky_rate : float;
}

let scenario_of rng cfg =
  let plan = ref Fault_plan.empty in
  let fate =
    let u = Splitmix.float rng in
    if u < 0.20 then Healthy
    else if u < 0.40 then begin
      plan := Fault_plan.crash ~fiber:0 ~at_access:(1 + Splitmix.int rng 600) !plan;
      Crash
    end
    else if u < 0.55 then begin
      plan :=
        Fault_plan.tear ~fiber:0
          ~at_copy:(1 + Splitmix.int rng 8)
          ~at_word:(Splitmix.int rng cfg.size_words)
          ~silent:false !plan;
      Tear
    end
    else
      Zombie
        {
          after = 1 + Splitmix.int rng 6;
          pause = (2 * cfg.lease) + Splitmix.int rng cfg.lease;
        }
  in
  (* At most one mid-write writer stall, strictly below lease/2: a
     stalled-but-live writer must never be deposed mid-write (see the
     module comment on fault soundness). *)
  if Splitmix.bernoulli rng 0.4 then
    plan :=
      Fault_plan.stall ~fiber:0
        ~at_access:(1 + Splitmix.int rng 400)
        ~steps:(100 + Splitmix.int rng ((cfg.lease / 2) - 150))
        !plan;
  (* Standby stalls model a supervisor outage: failover is delayed and
     readers ride through on degraded serves. *)
  if Splitmix.bernoulli rng 0.3 then
    plan :=
      Fault_plan.stall ~fiber:1
        ~at_access:(1 + Splitmix.int rng 50)
        ~steps:(cfg.lease + Splitmix.int rng (2 * cfg.lease))
        !plan;
  (* Crash-stop readers (crash mid-read, holding their slot pins). *)
  let ncrash =
    if cfg.max_crash_readers = 0 then 0
    else Splitmix.int rng (min cfg.max_crash_readers cfg.readers + 1)
  in
  let victims = Array.init cfg.readers (fun i -> i + 2) in
  Splitmix.shuffle rng victims;
  for v = 0 to ncrash - 1 do
    plan :=
      Fault_plan.crash ~fiber:victims.(v)
        ~at_access:(1 + Splitmix.int rng 300)
        !plan
  done;
  if cfg.readers > 0 && Splitmix.bernoulli rng 0.5 then
    plan :=
      Fault_plan.stall
        ~fiber:(2 + Splitmix.int rng cfg.readers)
        ~at_access:(1 + Splitmix.int rng 200)
        ~steps:(100 + Splitmix.int rng (2 * cfg.lease))
        !plan;
  let flaky_rate =
    (* A heavy-saturation tail (rates ~0.5-0.7) makes sessions trip
       their breaker before any snapshot exists, exercising the
       [Exhausted] outcome; the common tail drives retries and stale
       serves. *)
    if Splitmix.bernoulli rng 0.15 then 0.5 +. (0.2 *. Splitmix.float rng)
    else if Splitmix.bernoulli rng 0.6 then 0.05 +. (0.25 *. Splitmix.float rng)
    else 0.
  in
  { fate; plan = !plan; flaky_rate }

(* {1 One run} *)

type run_report = {
  seed : int;
  fate : string;
  flaky_rate : float;
  plan : Fault_plan.t;
  writes : int;  (** incumbent + standby, as recorded *)
  standby_writes : int;
  outcomes : Outcomes.t;  (** merged across sessions *)
  serves_checked : int;  (** degraded serves checked against the bound *)
  torn : int;
  failovers : int;
  quarantined : int;  (** slots retired by crash recovery at promote *)
  fenced_writes : int;
  writer_crashed : bool;
  reader_crashes : int;
  stalls : int;
  tears : int;
  crash_outcome : Checker.crash_outcome option;
  violations : string list;
}

let check_cfg cfg =
  if cfg.readers < 1 then
    invalid_arg (Printf.sprintf "Soak: readers = %d (need >= 1)" cfg.readers);
  if cfg.size_words < 1 then
    invalid_arg (Printf.sprintf "Soak: size_words = %d (need >= 1)" cfg.size_words);
  if cfg.lease < 400 then
    invalid_arg (Printf.sprintf "Soak: lease = %d (need >= 400)" cfg.lease);
  if cfg.deadline < 1 then
    invalid_arg (Printf.sprintf "Soak: deadline = %d (need >= 1)" cfg.deadline);
  if cfg.max_stale < 0 then
    invalid_arg (Printf.sprintf "Soak: max_stale = %d (need >= 0)" cfg.max_stale)

let run_one ~seed (cfg : cfg) : run_report =
  check_cfg cfg;
  let rng = Splitmix.of_int seed in
  let scen = scenario_of rng cfg in
  let strategy = Strategy.random ~seed:(seed + 1) in
  Flaky.set ~seed:(seed + 2) ~rate:scen.flaky_rate;
  let size = cfg.size_words in
  let init = Array.make size 0 in
  P.stamp init ~seq:0 ~len:size;
  (* Identities: [0, readers) for the sessions, [readers] the standby's
     spare; two more stay unclaimed as over-provisioned slots — a
     writer crash between its publish (W2) and freeze (W3) leaks the
     superseded slot's accounting, and the spares keep Lemma 4.1's
     free-slot guarantee strict even then (both unclaimed units pin
     the initial slot together, so each spare is a net extra slot). *)
  let freg = F.create ~readers:(cfg.readers + 3) ~capacity:size ~init in
  let sup = Sup.create ~now:Sched.now ~lease:cfg.lease freg in
  let threads = cfg.readers + 2 in
  let recorder = History.Recorder.create ~threads ~capacity:20_000 in
  let crashed = Array.make threads false in
  let ops = Array.make threads 0 in
  let torn = ref 0 in
  let pending = ref None in
  let stale_serves = ref [] in
  let sessions = Array.make cfg.readers None in

  let writer_a () =
    try
      let w = Sup.acquire sup in
      let src = Array.make size 0 in
      let seq = ref 0 in
      try
        while Sched.now () < cfg.max_steps do
          (match scen.fate with
          | Zombie { after; pause } when !seq = after -> Sched.sleep pause
          | _ -> ());
          incr seq;
          P.stamp src ~seq:!seq ~len:size;
          let invoked = Sched.now () in
          pending := Some (!seq, invoked);
          F.write w ~src ~len:size;
          History.Recorder.record recorder ~thread:0 History.Write ~seq:!seq
            ~invoked ~returned:(Sched.now ());
          pending := None;
          ops.(0) <- ops.(0) + 1;
          Sup.heartbeat sup w;
          Sched.cede ()
        done
      with Fenced.Fenced_out _ ->
        (* Deposed: the aborted attempt published nothing. *)
        pending := None
    with Fault_plan.Crashed -> crashed.(0) <- true
  in

  let standby_b () =
    let continue_writing w start_seq =
      let src = Array.make size 0 in
      let seq = ref start_seq in
      try
        while Sched.now () < cfg.max_steps do
          incr seq;
          P.stamp src ~seq:!seq ~len:size;
          let invoked = Sched.now () in
          F.write w ~src ~len:size;
          History.Recorder.record recorder ~thread:1 History.Write ~seq:!seq
            ~invoked ~returned:(Sched.now ());
          ops.(1) <- ops.(1) + 1;
          Sup.heartbeat sup w;
          Sched.cede ()
        done
      with Fenced.Fenced_out _ -> ()
    in
    let rec monitor () =
      if Sched.now () >= cfg.max_steps then ()
      else if Sup.expired sup then begin
        match Sup.promote sup with
        | Sup.Election.Won { writer = w; _ } ->
          (* Learn where the write sequence stands through the spare
             reader handle; a pending write that published before the
             fence is picked up here and continued from. *)
          let rd = F.reader freg cfg.readers in
          let last = R.read_with rd ~f:(fun buf _len -> P.decode_seq buf) in
          continue_writing w last
        | Sup.Election.Lost _ ->
          (* Another candidate won this suspicion; keep monitoring. *)
          Sched.cede ();
          monitor ()
      end
      else begin
        Sched.cede ();
        monitor ()
      end
    in
    monitor ()
  in

  let reader_body id () =
    try
      let rd = F.reader freg id in
      let session =
        S.create
          ~backoff:
            (Backoff.create ~base:8
               ~cap:(max 8 (cfg.deadline / 2))
               ~seed:(seed + 100 + id) ())
          ~breaker:
            (Breaker.create ~failure_threshold:3
               ~cooldown:(max 16 (cfg.lease / 2))
               ~now:Sched.now ())
          ~max_stale:cfg.max_stale ~now:Sched.now ~sleep:Sched.sleep
          ~capacity:size rd
      in
      sessions.(id) <- Some session;
      let f buf len =
        match P.validate buf ~len with
        | Ok s -> s
        | Error _ ->
          incr torn;
          P.decode_seq buf
      in
      while Sched.now () < cfg.max_steps do
        let invoked = Sched.now () in
        let deadline = invoked + cfg.deadline in
        (match S.read_with ~deadline session ~f with
        | S.Fresh s ->
          History.Recorder.record recorder ~thread:(id + 2) History.Read ~seq:s
            ~invoked ~returned:(Sched.now ())
        | S.Stale { value = s; age = _ } ->
          stale_serves :=
            { Checker.thread = id + 2; seq = s; at = Sched.now () }
            :: !stale_serves
        | S.Exhausted _ | S.Backpressured _ -> ());
        ops.(id + 2) <- ops.(id + 2) + 1;
        Sched.cede ()
      done
    with Fault_plan.Crashed -> crashed.(id + 2) <- true
  in

  let fibers =
    Array.init threads (fun i ->
        if i = 0 then writer_a
        else if i = 1 then standby_b
        else reader_body (i - 2))
  in
  Mem.install scen.plan;
  let backstop = (cfg.max_steps * 3) + 100_000 in
  let sched_outcome = Sched.run ~max_steps:backstop ~strategy fibers in
  let fstats = Mem.drain () in
  Flaky.set ~seed:0 ~rate:0.;

  (* Judge. *)
  let outcomes = Outcomes.create () in
  Array.iter
    (function
      | Some s ->
        (* Sessions count in per-domain Obs cells; after the vsched run
           every fiber is quiescent, so the snapshot is exact. *)
        Outcomes.merge_into ~src:(S.Outcomes.snapshot (S.outcomes s)) ~dst:outcomes
      | None -> ())
    sessions;
  let history = History.Recorder.history recorder in
  let pending_write = if crashed.(0) then !pending else None in
  let fence = Sup.last_fence sup in
  let check = Checker.check_crash ?pending_write ?fence history in
  let serves = List.rev !stale_serves in
  let stale_check =
    Checker.check_bounded_staleness history ~bound:(staleness_bound cfg) serves
  in
  let reader_crashes =
    let n = ref 0 in
    Array.iteri (fun i c -> if i >= 2 && c then incr n) crashed;
    !n
  in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if !torn > 0 then fail "%d torn snapshots" !torn;
  if History.Recorder.dropped recorder > 0 then
    fail "recorder overflow (%d events dropped)"
      (History.Recorder.dropped recorder);
  if sched_outcome.Sched.unfinished > 0 then
    fail "%d fibers never finished (hang/livelock inside the backstop)"
      sched_outcome.Sched.unfinished;
  Array.iteri
    (fun i o ->
      if i >= 2 && (not crashed.(i)) && o = 0 then
        fail "surviving reader %d completed no operation" (i - 2))
    ops;
  (match check with
  | Ok _ -> ()
  | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_violation v));
  (match stale_check with
  | Ok _ -> ()
  | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_staleness_violation v));
  if not crashed.(0) then begin
    (* Quiescent ARC ledger audit (skipped when the incumbent crashed
       mid-operation: its half-done slot legitimately unbalances the
       ledger; a fence-aborted write does not). *)
    let reg = F.inner freg in
    let slack = R.Debug.presence_slack reg in
    if slack < 0 || slack > reader_crashes then
      fail "presence-ledger slack %d outside [0, %d crashed readers]" slack
        reader_crashes;
    if not (R.Debug.free_slot_exists reg) then
      fail "no free slot among the N+2 (Lemma 4.1 violated)"
  end;
  {
    seed;
    fate = fate_name scen.fate;
    flaky_rate = scen.flaky_rate;
    plan = scen.plan;
    writes = ops.(0) + ops.(1);
    standby_writes = ops.(1);
    outcomes;
    serves_checked = (match stale_check with Ok n -> n | Error _ -> 0);
    torn = !torn;
    failovers = Sup.failovers sup;
    quarantined = Sup.quarantined sup;
    fenced_writes = F.fenced_writes freg;
    writer_crashed = crashed.(0);
    reader_crashes;
    stalls = fstats.Arc_fault.Fault_mem.stalls;
    tears = List.length fstats.Arc_fault.Fault_mem.tears;
    crash_outcome = (match check with Ok (_, o) -> Some o | Error _ -> None);
    violations = List.rev !violations;
  }

(* {1 The soak loop} *)

type outcome = {
  runs : int;
  writes : int;
  reads_fresh : int;
  stale_serves : int;
  exhausted : int;
  retries : int;
  injected_errors : int;
  failovers : int;
  handoffs : int;  (** runs where a promoted standby went on to write *)
  quarantined : int;  (** slots retired by successor crash recovery *)
  fenced_writes : int;
  writer_crashes : int;
  reader_crashes : int;
  zombies : int;
  stalls : int;
  tears : int;
  vanished : int;
  took_effect : int;
  violations : (int * string) list;  (** (run seed, description) *)
}

let clean o = o.violations = []

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%d runs: %d writes, %d fresh reads, %d stale serves, %d exhausted, \
     %d retries (%d injected errors)@,\
     %d failovers (%d completed handoffs, %d slots quarantined), %d fenced \
     writes; %d writer crashes, %d zombies, %d reader crashes, %d stalls, \
     %d tears@,\
     pending writes: %d vanished, %d took effect — %s@]"
    o.runs o.writes o.reads_fresh o.stale_serves o.exhausted o.retries
    o.injected_errors o.failovers o.handoffs o.quarantined o.fenced_writes
    o.writer_crashes o.zombies o.reader_crashes o.stalls o.tears o.vanished
    o.took_effect
    (if o.violations = [] then "CLEAN"
     else Printf.sprintf "%d VIOLATIONS" (List.length o.violations))

(* Aggregate counters as exposition metrics for the --metrics flag of
   the soak binary. *)
let metrics (o : outcome) =
  let open Arc_obs.Obs in
  [
    counter "soak_runs_total" ~help:"Completed soak runs" o.runs;
    counter "soak_writes_total" ~help:"Writes across all runs" o.writes;
    counter "soak_reads_fresh_total" ~help:"Fresh session reads" o.reads_fresh;
    counter "soak_stale_serves_total" ~help:"Degraded stale serves"
      o.stale_serves;
    counter "soak_exhausted_total" ~help:"Exhausted session reads" o.exhausted;
    counter "soak_retries_total" ~help:"Session retry attempts" o.retries;
    counter "soak_injected_errors_total" ~help:"Injected transient errors"
      o.injected_errors;
    counter "soak_failovers_total" ~help:"Supervisor promotions" o.failovers;
    counter "soak_handoffs_total" ~help:"Promotions followed by standby writes"
      o.handoffs;
    counter "soak_quarantined_slots_total"
      ~help:"Slots retired by successor crash recovery" o.quarantined;
    counter "soak_fenced_writes_total" ~help:"Writes through the epoch fence"
      o.fenced_writes;
    counter "soak_writer_crashes_total" ~help:"Injected writer crashes"
      o.writer_crashes;
    counter "soak_reader_crashes_total" ~help:"Injected reader crashes"
      o.reader_crashes;
    counter "soak_zombie_runs_total" ~help:"Runs with a zombie incumbent"
      o.zombies;
    counter "soak_tears_total"
      ~help:
        "Torn snapshots observed in fault windows (injected tears the \
         session layer must surface as errors, never serve)"
      o.tears;
    counter "soak_violations_total" ~help:"Checker violations (must stay 0)"
      (List.length o.violations);
  ]

let derive_seed (cfg : cfg) k = (cfg.seed * 1_000_003) + k

let replay_command ~seed cfg =
  Arc_report.Replay.(
    render ~exe:"dune exec bin/soak.exe --"
      [
        int "--replay" seed;
        int "--readers" cfg.readers;
        int "--size" cfg.size_words;
        int "--steps" cfg.max_steps;
        int "--lease" cfg.lease;
        int "--deadline" cfg.deadline;
        int "--max-stale" cfg.max_stale;
      ])

let run ?(on_run = fun (_ : run_report) -> ()) (cfg : cfg) : outcome =
  check_cfg cfg;
  let o =
    ref
      {
        runs = 0;
        writes = 0;
        reads_fresh = 0;
        stale_serves = 0;
        exhausted = 0;
        retries = 0;
        injected_errors = 0;
        failovers = 0;
        handoffs = 0;
        quarantined = 0;
        fenced_writes = 0;
        writer_crashes = 0;
        reader_crashes = 0;
        zombies = 0;
        stalls = 0;
        tears = 0;
        vanished = 0;
        took_effect = 0;
        violations = [];
      }
  in
  for k = 1 to cfg.runs do
    let seed = derive_seed cfg k in
    match run_one ~seed cfg with
    | exception e ->
      o :=
        {
          !o with
          runs = !o.runs + 1;
          violations =
            (seed, Printf.sprintf "run raised: %s" (Printexc.to_string e))
            :: !o.violations;
        }
    | r ->
      on_run r;
      let a = !o in
      o :=
        {
          runs = a.runs + 1;
          writes = a.writes + r.writes;
          reads_fresh = a.reads_fresh + Outcomes.ok_count r.outcomes;
          stale_serves = a.stale_serves + Outcomes.stale_count r.outcomes;
          exhausted = a.exhausted + Outcomes.exhausted_count r.outcomes;
          retries = a.retries + Outcomes.retry_count r.outcomes;
          injected_errors = a.injected_errors + Outcomes.error_count r.outcomes;
          failovers = a.failovers + r.failovers;
          handoffs =
            (a.handoffs + if r.failovers > 0 && r.standby_writes > 0 then 1 else 0);
          quarantined = a.quarantined + r.quarantined;
          fenced_writes = a.fenced_writes + r.fenced_writes;
          writer_crashes = (a.writer_crashes + if r.writer_crashed then 1 else 0);
          reader_crashes = a.reader_crashes + r.reader_crashes;
          zombies = (a.zombies + if r.fate = "zombie" then 1 else 0);
          stalls = a.stalls + r.stalls;
          tears = a.tears + r.tears;
          vanished =
            (a.vanished
            + match r.crash_outcome with Some Checker.Vanished -> 1 | _ -> 0);
          took_effect =
            (a.took_effect
            + match r.crash_outcome with Some Checker.Took_effect -> 1 | _ -> 0);
          violations =
            List.map (fun m -> (seed, m)) r.violations @ a.violations;
        }
  done;
  !o

(* {1 Negative control: the same handoff, unfenced}

   Both the deposed incumbent and the promoted standby write through
   the raw register — no epoch, no guard.  After the incumbent's pause
   the two writers overlap: duplicate sequence numbers (both continue
   from the same history), torn slots (both preparing the same "free"
   slot), or a broken free-slot invariant.  The run is {e convicted}
   if the checker or the integrity probes catch any of it — showing
   the fence, not luck, is what keeps the fenced soak clean. *)

let unfenced_control ~seed (cfg : cfg) : bool * string list =
  check_cfg cfg;
  Flaky.set ~seed ~rate:0.;
  let strategy = Strategy.random ~seed:(seed + 1) in
  let size = cfg.size_words in
  let init = Array.make size 0 in
  P.stamp init ~seq:0 ~len:size;
  let reg = R.create ~readers:(cfg.readers + 3) ~capacity:size ~init in
  let threads = cfg.readers + 2 in
  let recorder = History.Recorder.create ~threads ~capacity:20_000 in
  let torn = ref 0 in
  let anomalies = ref [] in
  let hb = ref 0 in
  let pause_after = 3 in
  let writer thread start_delay () =
    try
      (* The "failure detector" of this control is deliberately naive:
         wall-clock heartbeat age, no fencing on promotion. *)
      let rec wait () =
        if Sched.now () >= cfg.max_steps then None
        else if thread = 0 then Some 0
        else if Sched.now () - !hb > cfg.lease then begin
          let rd = R.reader reg cfg.readers in
          Some (R.read_with rd ~f:(fun buf _len -> P.decode_seq buf))
        end
        else begin
          Sched.cede ();
          wait ()
        end
      in
      match wait () with
      | None -> ()
      | Some start_seq ->
        let src = Array.make size 0 in
        let seq = ref start_seq in
        while Sched.now () < cfg.max_steps do
          if thread = 0 && !seq = start_delay then Sched.sleep (3 * cfg.lease);
          incr seq;
          P.stamp src ~seq:!seq ~len:size;
          let invoked = Sched.now () in
          R.write reg ~src ~len:size;
          History.Recorder.record recorder ~thread History.Write ~seq:!seq
            ~invoked ~returned:(Sched.now ());
          hb := Sched.now ();
          Sched.cede ()
        done
    with Failure msg -> anomalies := msg :: !anomalies
  in
  let reader_body id () =
    let rd = R.reader reg id in
    while Sched.now () < cfg.max_steps do
      let invoked = Sched.now () in
      let seq =
        R.read_with rd ~f:(fun buf len ->
            match P.validate buf ~len with
            | Ok s -> s
            | Error _ ->
              incr torn;
              P.decode_seq buf)
      in
      History.Recorder.record recorder ~thread:(id + 2) History.Read ~seq
        ~invoked ~returned:(Sched.now ());
      Sched.cede ()
    done
  in
  let fibers =
    Array.init threads (fun i ->
        if i = 0 then writer 0 pause_after
        else if i = 1 then writer 1 (-1)
        else reader_body (i - 2))
  in
  Mem.install Fault_plan.empty;
  let backstop = (cfg.max_steps * 3) + 100_000 in
  let sched_outcome = Sched.run ~max_steps:backstop ~strategy fibers in
  ignore (Mem.drain ());
  let reasons = ref !anomalies in
  if !torn > 0 then reasons := Printf.sprintf "%d torn snapshots" !torn :: !reasons;
  if sched_outcome.Sched.unfinished > 0 then
    reasons :=
      Printf.sprintf "%d fibers never finished" sched_outcome.Sched.unfinished
      :: !reasons;
  (match Checker.check (History.Recorder.history recorder) with
  | Ok _ -> ()
  | Error v -> reasons := Format.asprintf "%a" Checker.pp_violation v :: !reasons);
  (!reasons <> [], !reasons)

(* {1 Churn campaign (ISSUE 8)}

   The soak above holds its reader population fixed for a run — the
   paper's model.  The churn campaign is the opposite regime: a small
   admission gate (capacity N) in front of [Arc_dynamic], and an
   unbounded stream of short-lived readers arriving on [lanes]
   concurrent lanes, each tenancy admitted through the gate, reading
   through a deadline-aware session over the gate's {e persistent}
   handle, then departing — or abandoning its ticket (modeling
   kill -9), leaving the lease sweep to evict it.  Lanes can also be
   crash-stopped mid-read by the fault plan (a pin leaked {e inside}
   the register, on top of the ticket leaked in the gate).

   Judged like the main soak — atomicity, bounded staleness, presence
   ledger — plus the gate's own books: ticket conservation
   (admitted − departed − evicted = live at quiescence), the
   N + 2 live-buffer bound against an arrival population ≫ N, and the
   headline guarantee that {e no} [Saturated] raise escapes past the
   gate to churn code. *)

module D = Arc_core.Arc_dynamic.Make (Mem)
module DS = Session.Make (D)
module DGate = Admission.Make (D)
module Packed = Arc_util.Packed

type churn_cfg = {
  base : cfg;
  rate : float;  (** arrival probability per lane per idle scheduling point *)
  gate_capacity : int;  (** N: reader identities the gate leases out *)
  lanes : int;  (** concurrent churner fibers *)
  waiting_room : int;  (** bounded waiting-room size of [admit_wait] *)
  crash_frac : float;  (** fraction of tenancies that abandon without depart *)
}

let default_churn =
  {
    base = { default with readers = 4 };
    rate = 0.02;
    gate_capacity = 4;
    lanes = 6;
    waiting_room = 2;
    crash_frac = 0.3;
  }

let check_churn_cfg c =
  check_cfg c.base;
  if c.rate <= 0. || c.rate > 1. then
    invalid_arg (Printf.sprintf "Soak churn: rate = %g (need 0 < rate <= 1)" c.rate);
  if c.gate_capacity < 1 then
    invalid_arg (Printf.sprintf "Soak churn: gate = %d (need >= 1)" c.gate_capacity);
  if c.lanes < 1 then
    invalid_arg (Printf.sprintf "Soak churn: lanes = %d (need >= 1)" c.lanes);
  if c.waiting_room < 0 then
    invalid_arg (Printf.sprintf "Soak churn: room = %d (need >= 0)" c.waiting_room);
  if c.crash_frac < 0. || c.crash_frac > 1. then
    invalid_arg (Printf.sprintf "Soak churn: crash-frac = %g" c.crash_frac)

type churn_report = {
  cseed : int;
  arrivals : int;
  cadmitted : int;
  cbackpressured : int;
  cdeparted : int;
  cevicted : int;
  abandoned : int;  (** tenancies that deliberately skipped depart *)
  lane_crashes : int;
  cwrites : int;
  coutcomes : Outcomes.t;
  refused_serves : int;  (** session reads refused by the admission guard *)
  cserves_checked : int;
  chigh_water : int;
  live_buffers_max : int;
  cviolations : string list;
}

(* Lane fates.  Crashes and over-lease pauses are modeled {e between}
   reads (the [crash_frac] abandonment arm and the oversleep arm in
   the lane body), never mid-access: an identity whose holder died
   mid-read cannot be re-leased by anyone — the handle's private
   cursor and the ledger's pin can disagree, and the paper's model
   retires such identities forever.  The gate's contract is
   accordingly that tenancies end between reads (a process-level
   kill -9 satisfies this trivially: the dead process's handle state
   dies with it; the gate's persistent handle was last touched at a
   read boundary).  Fault-plan stalls stay strictly below the ticket
   lease for the same lease-discipline reason as writer stalls in the
   failover soak: a slower-but-live holder must not be evicted while a
   read is in flight on its handle. *)
let churn_plan rng (c : churn_cfg) =
  let plan = ref Fault_plan.empty in
  let nstall = Splitmix.int rng ((c.lanes / 2) + 1) in
  let victims = Array.init c.lanes (fun i -> i + 2) in
  Splitmix.shuffle rng victims;
  for v = 0 to nstall - 1 do
    plan :=
      Fault_plan.stall ~fiber:victims.(v)
        ~at_access:(1 + Splitmix.int rng 2_000)
        ~steps:(100 + Splitmix.int rng (max 101 ((c.base.lease / 3) - 100)))
        !plan
  done;
  !plan

let run_churn_one ~seed ~join ~leave (c : churn_cfg) : churn_report =
  check_churn_cfg c;
  let cfg = c.base in
  let rng = Splitmix.of_int seed in
  let plan = churn_plan rng c in
  let strategy = Strategy.random ~seed:(seed + 1) in
  let size = cfg.size_words in
  let init = Array.make size 0 in
  P.stamp init ~seq:0 ~len:size;
  let dreg = D.create ~readers:c.gate_capacity ~capacity:size ~init in
  (* Storage-reclaim lease in writes, derived from the time lease the
     way [staleness_bound] converts steps to writes. *)
  let reclaim_lease = max 1 (cfg.lease / size) in
  D.set_lease dreg (Some reclaim_lease);
  let reclaim_requested = ref false in
  let gate =
    DGate.create ~room:c.waiting_room ~lease:cfg.lease
      ~on_release:(fun () -> reclaim_requested := true)
      ~now:Sched.now ~sleep:Sched.sleep ~base:0 ~capacity:c.gate_capacity dreg
  in
  let threads = c.lanes + 2 in
  let recorder = History.Recorder.create ~threads ~capacity:20_000 in
  let crashed = Array.make threads false in
  let ops = Array.make threads 0 in
  let torn = ref 0 in
  let arrivals = ref 0 in
  let abandoned = ref 0 in
  let refused_serves = ref 0 in
  let escaped = ref [] in
  let stale_serves = ref [] in
  let live_buffers_max = ref 0 in
  let late_frees = ref 0 in
  let outcomes = Outcomes.create () in

  let writer () =
    try
      let src = Array.make size 0 in
      let seq = ref 0 in
      while Sched.now () < cfg.max_steps do
        incr seq;
        P.stamp src ~seq:!seq ~len:size;
        let invoked = Sched.now () in
        D.write dreg ~src ~len:size;
        History.Recorder.record recorder ~thread:0 History.Write ~seq:!seq
          ~invoked ~returned:(Sched.now ());
        ops.(0) <- ops.(0) + 1;
        (* Depart-triggered reclaim runs here — storage revocation is
           the writer's side of the protocol, so the gate's
           [on_release] only raises a flag. *)
        if !reclaim_requested then begin
          reclaim_requested := false;
          ignore (D.reclaim_stale dreg ~lease:reclaim_lease)
        end;
        Sched.cede ()
      done
    with Fault_plan.Crashed -> crashed.(0) <- true
  in

  let janitor () =
    while Sched.now () < cfg.max_steps do
      Sched.sleep (max 1 (cfg.lease / 2));
      ignore (DGate.sweep gate);
      live_buffers_max := max !live_buffers_max (D.live_buffers dreg);
      ops.(1) <- ops.(1) + 1;
      Sched.cede ()
    done
  in

  let lane k () =
    let thread = k + 2 in
    let lrng = Splitmix.of_int ((seed * 31) + 7_777 + k) in
    let f buf len =
      match P.validate buf ~len with
      | Ok s -> s
      | Error _ ->
        incr torn;
        P.decode_seq buf
    in
    try
      while Sched.now () < cfg.max_steps do
        if Splitmix.float lrng < c.rate then begin
          incr arrivals;
          let t0 = Sched.now () in
          match DGate.admit_wait ~deadline:(t0 + cfg.deadline) gate with
          | Arc_core.Register_intf.Backpressured bp ->
            (* Come back later, as told — jittered by the verdict. *)
            Sched.sleep bp.Arc_core.Register_intf.retry_after
          | Arc_core.Register_intf.Admitted ticket ->
            Arc_util.Histogram.record join (Sched.now () - t0);
            let session =
              DS.create
                ~admission:(DGate.guard gate ticket)
                ~backoff:
                  (Backoff.create ~base:8
                     ~cap:(max 8 (cfg.deadline / 2))
                     ~seed:(seed + 500 + !arrivals) ())
                ~breaker:
                  (Breaker.create ~failure_threshold:3
                     ~cooldown:(max 16 (cfg.lease / 2))
                     ~now:Sched.now ())
                ~max_stale:cfg.max_stale ~now:Sched.now ~sleep:Sched.sleep
                ~capacity:size (DGate.reader gate ticket)
            in
            let tenancy_reads = 1 + Splitmix.int lrng 8 in
            (* The oversleep arm: a holder paused past its lease — a
               long GC or VM migration — taken {e between} reads, where
               no operation is in flight on the handle.  The sweep
               evicts it; on waking, the session's admission guard
               refuses before the handle is touched, and the late
               depart below must fail its generation CAS rather than
               free the identity out from under the next tenant. *)
            let oversleep =
              if Splitmix.bernoulli lrng 0.15 then
                1 + Splitmix.int lrng tenancy_reads
              else -1
            in
            let evicted_underfoot = ref false in
            (let r = ref 0 in
             while (not !evicted_underfoot) && !r < tenancy_reads
                   && Sched.now () < cfg.max_steps do
               incr r;
               if !r = oversleep then
                 Sched.sleep (cfg.lease + (cfg.lease / 2));
               let invoked = Sched.now () in
               (match DS.read_with ~deadline:(invoked + cfg.deadline) session ~f with
               | DS.Fresh s ->
                 History.Recorder.record recorder ~thread History.Read ~seq:s
                   ~invoked ~returned:(Sched.now ())
               | DS.Stale { value = s; _ } ->
                 stale_serves :=
                   { Checker.thread; seq = s; at = Sched.now () } :: !stale_serves
               | DS.Exhausted _ -> ()
               | DS.Backpressured _ ->
                 (* Our lease was swept out from under us (a stall made
                    us look dead).  Stop using the identity at once. *)
                 incr refused_serves;
                 evicted_underfoot := true);
               ops.(thread) <- ops.(thread) + 1;
               if not (DGate.renew gate ticket) then evicted_underfoot := true;
               Sched.cede ()
             done);
            Outcomes.merge_into
              ~src:(DS.Outcomes.snapshot (DS.outcomes session))
              ~dst:outcomes;
            if !evicted_underfoot then begin
              (* Reclaim-then-late-release: the evicted zombie's depart
                 must lose its generation CAS — a success here would
                 free the identity out from under its next tenant. *)
              if DGate.depart gate ticket then incr late_frees
            end
            else if Splitmix.float lrng < c.crash_frac then
              (* kill -9: walk away with the ticket held; the sweep
                 pays for the funeral. *)
              incr abandoned
            else ignore (DGate.depart gate ticket);
            Arc_util.Histogram.record leave (Sched.now () - t0)
        end
        else Sched.cede ()
      done
    with
    | Fault_plan.Crashed -> crashed.(thread) <- true
    | Arc_core.Register_intf.Saturated msg ->
      (* The headline guarantee: gate-fronted churn must never see
         this.  Recorded as a violation, not re-raised, so the run
         still quiesces and reports. *)
      escaped := msg :: !escaped
  in

  let fibers =
    Array.init threads (fun i ->
        if i = 0 then writer else if i = 1 then janitor else lane (i - 2))
  in
  Mem.install plan;
  let backstop = (cfg.max_steps * 3) + 100_000 in
  let sched_outcome = Sched.run ~max_steps:backstop ~strategy fibers in
  ignore (Mem.drain ());

  (* Judge. *)
  let history = History.Recorder.history recorder in
  let check = Checker.check history in
  let serves = List.rev !stale_serves in
  let stale_check =
    Checker.check_bounded_staleness history ~bound:(staleness_bound cfg) serves
  in
  let lane_crashes =
    let n = ref 0 in
    Array.iteri (fun i cr -> if i >= 2 && cr then incr n) crashed;
    !n
  in
  let pool = DGate.pool gate in
  let ev = Admission.Pool.events pool in
  let admitted = Arc_obs.Obs.Admission.admitted_count ev in
  let backpressured = Arc_obs.Obs.Admission.backpressured_count ev in
  let departed = Arc_obs.Obs.Admission.departed_count ev in
  let evicted = Arc_obs.Obs.Admission.evicted_count ev in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  List.iter (fun m -> fail "Saturated escaped the admission gate: %s" m) !escaped;
  if !torn > 0 then fail "%d torn snapshots" !torn;
  if History.Recorder.dropped recorder > 0 then
    fail "recorder overflow (%d events dropped)"
      (History.Recorder.dropped recorder);
  if sched_outcome.Sched.unfinished > 0 then
    fail "%d fibers never finished (hang/livelock inside the backstop)"
      sched_outcome.Sched.unfinished;
  (match check with
  | Ok _ -> ()
  | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_violation v));
  (match stale_check with
  | Ok _ -> ()
  | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_staleness_violation v));
  (* Ticket conservation at quiescence. *)
  if admitted - departed - evicted <> Admission.Pool.live pool then
    fail "ticket books don't balance: %d admitted - %d departed - %d evicted <> %d live"
      admitted departed evicted (Admission.Pool.live pool);
  if Admission.Pool.high_water pool > c.gate_capacity then
    fail "high water %d exceeds gate capacity %d"
      (Admission.Pool.high_water pool) c.gate_capacity;
  (* The N+2 claim under unbounded arrivals. *)
  live_buffers_max := max !live_buffers_max (D.live_buffers dreg);
  if !live_buffers_max > c.gate_capacity + 2 then
    fail "%d live buffers exceed the N+2 bound (N = %d)" !live_buffers_max
      c.gate_capacity;
  if !late_frees > 0 then
    fail "%d late departs freed an evicted ticket (generation CAS failed open)"
      !late_frees;
  (* Presence ledger: abandonment, eviction and late departs all leave
     the register's ledger untouched (the persistent handle keeps each
     identity's pin well-formed), so the slack must be exactly zero —
     unlike the failover soak there are no mid-read crashes here. *)
  let slack = D.Debug.presence_slack dreg in
  if slack <> 0 then
    fail "presence-ledger slack %d (must be 0: tenancies end between reads)"
      slack;
  if not (D.Debug.free_slot_exists dreg) then
    fail "no free slot among the N+2 (Lemma 4.1 violated)";
  (* Non-vacuity: the campaign must actually churn. *)
  if !arrivals = 0 then fail "no arrivals (vacuous run)";
  if admitted = 0 then fail "no admissions (vacuous run)";
  if ops.(0) = 0 then fail "writer made no writes";
  {
    cseed = seed;
    arrivals = !arrivals;
    cadmitted = admitted;
    cbackpressured = backpressured;
    cdeparted = departed;
    cevicted = evicted;
    abandoned = !abandoned;
    lane_crashes;
    cwrites = ops.(0);
    coutcomes = outcomes;
    refused_serves = !refused_serves;
    cserves_checked = (match stale_check with Ok n -> n | Error _ -> 0);
    chigh_water = Admission.Pool.high_water pool;
    live_buffers_max = !live_buffers_max;
    cviolations = List.rev !violations;
  }

type churn_outcome = {
  cruns : int;
  arrivals : int;
  admitted : int;
  backpressured : int;
  departed : int;
  evicted : int;
  abandoned : int;
  lane_crashes : int;
  writes : int;
  reads_fresh : int;
  stale_serves : int;
  exhausted : int;
  refused_serves : int;
  serves_checked : int;
  high_water_max : int;
  live_buffers_max : int;
  join : Arc_util.Histogram.t;  (** arrival -> admitted, simulated steps *)
  leave : Arc_util.Histogram.t;  (** arrival -> tenancy end, simulated steps *)
  churn_violations : (int * string) list;
}

let churn_clean o = o.churn_violations = []

let pp_churn_outcome ppf o =
  let pct h p =
    if Arc_util.Histogram.count h = 0 then -1
    else Arc_util.Histogram.percentile h p
  in
  Format.fprintf ppf
    "@[<v>%d churn runs: %d arrivals -> %d admitted, %d backpressured; %d \
     departed, %d evicted (%d abandoned, %d lane crashes)@,\
     %d writes, %d fresh reads, %d stale serves, %d exhausted, %d refused \
     serves; high water %d, live buffers max %d@,\
     join p50/p99: %d/%d steps, tenancy p50/p99: %d/%d steps — %s@]"
    o.cruns o.arrivals o.admitted o.backpressured o.departed o.evicted
    o.abandoned o.lane_crashes o.writes o.reads_fresh o.stale_serves
    o.exhausted o.refused_serves o.high_water_max o.live_buffers_max
    (pct o.join 50.) (pct o.join 99.) (pct o.leave 50.) (pct o.leave 99.)
    (if o.churn_violations = [] then "CLEAN"
     else Printf.sprintf "%d VIOLATIONS" (List.length o.churn_violations))

let churn_metrics (o : churn_outcome) =
  let open Arc_obs.Obs in
  let quantiles name h help =
    if Arc_util.Histogram.count h = 0 then []
    else
      List.map
        (fun (q, p) ->
          gauge name
            ~labels:[ ("quantile", q) ]
            ~help
            (float_of_int (Arc_util.Histogram.percentile h p)))
        [ ("0.5", 50.); ("0.99", 99.) ]
  in
  [
    counter "soak_churn_runs_total" ~help:"Completed churn runs" o.cruns;
    counter "soak_churn_arrivals_total" ~help:"Reader arrivals offered to the gate"
      o.arrivals;
    counter "arc_admission_admitted_total" ~help:"Admissions granted" o.admitted;
    counter "arc_admission_backpressured_total"
      ~help:"Arrivals refused with a typed verdict" o.backpressured;
    counter "arc_admission_departed_total" ~help:"Tickets explicitly departed"
      o.departed;
    counter "arc_admission_evicted_total" ~help:"Tickets reclaimed by lease sweep"
      o.evicted;
    counter "soak_churn_abandoned_total"
      ~help:"Tenancies that walked away without departing" o.abandoned;
    counter "soak_churn_lane_crashes_total" ~help:"Crash-stopped churn lanes"
      o.lane_crashes;
    counter "soak_churn_refused_serves_total"
      ~help:"Session reads refused after a lease sweep revoked the ticket"
      o.refused_serves;
    gauge "soak_churn_live_buffers_max"
      ~help:"Peak live-buffer count (bound: gate capacity + 2)"
      (float_of_int o.live_buffers_max);
    counter "soak_churn_violations_total" ~help:"Checker violations (must stay 0)"
      (List.length o.churn_violations);
  ]
  @ quantiles "soak_churn_join_steps" o.join
      "Arrival-to-admission latency (simulated steps)"
  @ quantiles "soak_churn_tenancy_steps" o.leave
      "Arrival-to-tenancy-end latency (simulated steps)"

let churn_replay_command ~seed (c : churn_cfg) =
  Arc_report.Replay.(
    render ~exe:"dune exec bin/soak.exe --"
      [
        int "--replay" seed;
        float "--churn" c.rate;
        int "--gate" c.gate_capacity;
        int "--lanes" c.lanes;
        int "--room" c.waiting_room;
        float "--crash-frac" c.crash_frac;
        int "--readers" c.base.readers;
        int "--size" c.base.size_words;
        int "--steps" c.base.max_steps;
        int "--lease" c.base.lease;
        int "--deadline" c.base.deadline;
        int "--max-stale" c.base.max_stale;
      ])

let run_churn ?(on_run = fun (_ : churn_report) -> ()) (c : churn_cfg) :
    churn_outcome =
  check_churn_cfg c;
  let join = Arc_util.Histogram.create () in
  let leave = Arc_util.Histogram.create () in
  let o =
    ref
      {
        cruns = 0;
        arrivals = 0;
        admitted = 0;
        backpressured = 0;
        departed = 0;
        evicted = 0;
        abandoned = 0;
        lane_crashes = 0;
        writes = 0;
        reads_fresh = 0;
        stale_serves = 0;
        exhausted = 0;
        refused_serves = 0;
        serves_checked = 0;
        high_water_max = 0;
        live_buffers_max = 0;
        join;
        leave;
        churn_violations = [];
      }
  in
  for k = 1 to c.base.runs do
    let seed = derive_seed c.base k in
    match run_churn_one ~seed ~join ~leave c with
    | exception e ->
      o :=
        {
          !o with
          cruns = !o.cruns + 1;
          churn_violations =
            (seed, Printf.sprintf "run raised: %s" (Printexc.to_string e))
            :: !o.churn_violations;
        }
    | r ->
      on_run r;
      let a = !o in
      o :=
        {
          a with
          cruns = a.cruns + 1;
          arrivals = a.arrivals + r.arrivals;
          admitted = a.admitted + r.cadmitted;
          backpressured = a.backpressured + r.cbackpressured;
          departed = a.departed + r.cdeparted;
          evicted = a.evicted + r.cevicted;
          abandoned = a.abandoned + r.abandoned;
          lane_crashes = a.lane_crashes + r.lane_crashes;
          writes = a.writes + r.cwrites;
          reads_fresh = a.reads_fresh + Outcomes.ok_count r.coutcomes;
          stale_serves = a.stale_serves + Outcomes.stale_count r.coutcomes;
          exhausted = a.exhausted + Outcomes.exhausted_count r.coutcomes;
          refused_serves = a.refused_serves + r.refused_serves;
          serves_checked = a.serves_checked + r.cserves_checked;
          high_water_max = max a.high_water_max r.chigh_water;
          live_buffers_max = max a.live_buffers_max r.live_buffers_max;
          churn_violations =
            List.map (fun m -> (seed, m)) r.cviolations @ a.churn_violations;
        }
  done;
  !o

(* {1 Negative control: churn without the gate}

   Two arms, each an ungated copy of something the campaign does only
   through the gate; the control is {e convicted} — the desired
   outcome — when the damage is caught.

   Arm 1 mints a {e fresh} reader handle per arrival over a live
   identity, exactly the idiom the gate's persistent handles exist to
   prevent.  A fresh handle believes the identity's presence pin is on
   slot 0 (I1); when the pin actually sits elsewhere, the handle's
   first slow read releases a unit slot 0 never owed and leaks the
   unit the identity had pinned — per-slot over-release (r_end >
   r_start), a pinned-forever slot, eventually a writer with no free
   slot.  Arm 2 plants the packed count at the saturation boundary and
   performs one raw ungated read: the [Saturated] raise reaches the
   caller — precisely what gate-fronted churn reports as a violation
   if it ever happens.  Arm 2's conviction is deterministic, so the
   control convicts on every invocation; arm 1's evidence (ledger or
   checker) convicts on virtually every seed and is reported when
   found. *)

let churn_control ~seed (c : churn_cfg) : bool * string list =
  check_churn_cfg c;
  let cfg = c.base in
  let size = cfg.size_words in
  let reasons = ref [] in
  let convict fmt = Printf.ksprintf (fun m -> reasons := m :: !reasons) fmt in
  (* Arm 1: fresh-handle-per-arrival churn, no gate. *)
  (let strategy = Strategy.random ~seed:(seed + 1) in
   let init = Array.make size 0 in
   P.stamp init ~seq:0 ~len:size;
   let dreg = D.create ~readers:c.gate_capacity ~capacity:size ~init in
   let torn = ref 0 in
   let anomalies = ref [] in
   let threads = c.lanes + 1 in
   let recorder = History.Recorder.create ~threads ~capacity:20_000 in
   let writer () =
     try
       let src = Array.make size 0 in
       let seq = ref 0 in
       while Sched.now () < cfg.max_steps do
         incr seq;
         P.stamp src ~seq:!seq ~len:size;
         let invoked = Sched.now () in
         D.write dreg ~src ~len:size;
         History.Recorder.record recorder ~thread:0 History.Write ~seq:!seq
           ~invoked ~returned:(Sched.now ());
         Sched.cede ()
       done
     with Failure msg -> anomalies := msg :: !anomalies
   in
   let lane k () =
     let thread = k + 1 in
     let lrng = Splitmix.of_int ((seed * 131) + k) in
     try
       while Sched.now () < cfg.max_steps do
         if Splitmix.float lrng < c.rate then begin
           (* The bypass: a brand-new handle for a pooled identity,
              minted mid-run. *)
           let rd = D.reader dreg (Splitmix.int lrng c.gate_capacity) in
           for _ = 1 to 1 + Splitmix.int lrng 4 do
             if Sched.now () < cfg.max_steps then begin
               let invoked = Sched.now () in
               let s =
                 D.read_with rd ~f:(fun buf len ->
                     match P.validate buf ~len with
                     | Ok s -> s
                     | Error _ ->
                       incr torn;
                       P.decode_seq buf)
               in
               History.Recorder.record recorder ~thread History.Read ~seq:s
                 ~invoked ~returned:(Sched.now ())
             end
           done
         end
         else Sched.cede ()
       done
     with
     | Arc_core.Register_intf.Saturated _ ->
       anomalies := "Saturated escaped to a churn lane" :: !anomalies
     | Failure msg -> anomalies := msg :: !anomalies
   in
   let fibers =
     Array.init threads (fun i -> if i = 0 then writer else lane (i - 1))
   in
   Mem.install Fault_plan.empty;
   let backstop = (cfg.max_steps * 3) + 100_000 in
   let sched_outcome = Sched.run ~max_steps:backstop ~strategy fibers in
   ignore (Mem.drain ());
   List.iter (fun m -> convict "%s" m) !anomalies;
   if !torn > 0 then convict "%d torn snapshots" !torn;
   if sched_outcome.Sched.unfinished > 0 then
     convict "%d fibers never finished" sched_outcome.Sched.unfinished;
   (match Checker.check (History.Recorder.history recorder) with
   | Ok _ -> ()
   | Error v -> convict "%s" (Format.asprintf "%a" Checker.pp_violation v));
   let slack = D.Debug.presence_slack dreg in
   if slack <> 0 then convict "presence-ledger slack %d (must be 0: no crashes)" slack;
   for j = 0 to D.Debug.slots dreg - 1 do
     if D.Debug.r_end dreg j > D.Debug.r_start dreg j then
       convict "slot %d over-released (r_end %d > r_start %d)" j
         (D.Debug.r_end dreg j) (D.Debug.r_start dreg j)
   done;
   if not (D.Debug.free_slot_exists dreg) then
     convict "no free slot among the N+2 (pins leaked by fresh handles)");
  (* Arm 2: ungated read at the saturation boundary — deterministic. *)
  (let init = Array.make size 0 in
   P.stamp init ~seq:0 ~len:size;
   Mem.install Fault_plan.empty;
   let dreg = D.create ~readers:2 ~capacity:size ~init in
   let rd = D.reader dreg 0 in
   let src = Array.make size 0 in
   P.stamp src ~seq:1 ~len:size;
   D.write dreg ~src ~len:size;
   (* The handle still points at slot 0; the next read takes the slow
      path and its subscribe increments straight past the bound. *)
   D.Debug.force_current dreg
     (Packed.make
        ~index:(Packed.index (D.Debug.current dreg))
        ~count:Packed.max_readers);
   (match D.read_with rd ~f:(fun _ len -> len) with
   | exception Arc_core.Register_intf.Saturated _ ->
     convict "ungated read let Saturated escape to the caller"
   | _ -> ());
   ignore (Mem.drain ()));
  (!reasons <> [], List.rev !reasons)

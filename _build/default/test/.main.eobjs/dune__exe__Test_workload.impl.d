test/test_workload.ml: Alcotest Arc_mem Arc_workload Array Hashtbl List QCheck QCheck_alcotest String

(* Real-parallelism stress: domains (and systhreads) hammer each
   register in Verify mode; every snapshot is validated and the
   recorded history must pass the atomicity checker.  This is the
   hardware-memory-model counterpart of the simulated exploration. *)

module Config = Arc_harness.Config
module Registry = Arc_harness.Registry
module Checker = Arc_trace.Checker

let verify_cfg =
  {
    Config.default_real with
    Config.readers = 3;
    size_words = 64;
    duration_s = 0.15;
    workload = Config.Verify;
    record = 200_000;
    seed = 99;
  }

let assert_clean ~who (result : Config.result) =
  if result.Config.torn > 0 then
    Alcotest.failf "%s: %d torn snapshots on real domains" who result.Config.torn;
  match result.Config.history with
  | None -> Alcotest.failf "%s: no history" who
  | Some h ->
    if result.Config.dropped_events > 0 then
      (* With drops the history is incomplete: torn-freedom was still
         checked op-by-op, but skip the history checker. *)
      ()
    else begin
      match Checker.check h with
      | Ok report ->
        if report.Checker.reads_checked = 0 then
          Alcotest.failf "%s: no reads recorded" who
      | Error v -> Alcotest.failf "%s: %a" who Checker.pp_violation v
    end

let clamp_readers (entry : Registry.entry) (cfg : Config.real) =
  match
    entry.Registry.caps.Arc_core.Register_intf.max_readers
      ~capacity_words:cfg.Config.size_words
  with
  | Some bound when cfg.Config.readers > bound -> { cfg with Config.readers = bound }
  | _ -> cfg

let domain_case (entry : Registry.entry) =
  Alcotest.test_case
    (Printf.sprintf "%s: atomic on parallel domains" entry.Registry.name)
    `Quick
    (fun () ->
      let cfg = clamp_readers entry verify_cfg in
      assert_clean ~who:entry.Registry.name (entry.Registry.run_real cfg))

let thread_case (entry : Registry.entry) =
  Alcotest.test_case
    (Printf.sprintf "%s: atomic on time-shared threads" entry.Registry.name)
    `Quick
    (fun () ->
      let cfg =
        clamp_readers entry
          { verify_cfg with Config.parallelism = `Threads; readers = 8;
            duration_s = 0.1 }
      in
      assert_clean ~who:entry.Registry.name (entry.Registry.run_real cfg))

let test_steal_mode_still_atomic () =
  (* CPU-steal injection must degrade performance, never correctness. *)
  let entry = Registry.find "arc" in
  let cfg =
    {
      verify_cfg with
      Config.steal = Some { Config.probability = 0.01; pause_us = 200. };
    }
  in
  assert_clean ~who:"arc+steal" (entry.Registry.run_real cfg)

let test_hold_throughput_sane () =
  (* Hold-model runs report coherent accounting. *)
  List.iter
    (fun name ->
      let entry = Registry.find name in
      let cfg =
        { Config.default_real with Config.duration_s = 0.05; size_words = 16 }
      in
      let r = entry.Registry.run_real cfg in
      if r.Config.reads <= 0 then Alcotest.failf "%s: no reads" name;
      if r.Config.writes <= 0 then Alcotest.failf "%s: no writes" name;
      if r.Config.duration <= 0. then Alcotest.failf "%s: no elapsed time" name;
      let recomputed =
        float_of_int (r.Config.reads + r.Config.writes) /. r.Config.duration
      in
      if Float.abs (recomputed -. r.Config.total_throughput) > 1e-6 then
        Alcotest.failf "%s: inconsistent throughput" name)
    [ "arc"; "rf"; "peterson"; "rwlock"; "seqlock" ]

let suite =
  List.map domain_case Registry.all
  @ List.map thread_case [ Registry.find "arc"; Registry.find "peterson" ]
  @ [
      Alcotest.test_case "arc atomic under steal injection" `Quick
        test_steal_mode_still_atomic;
      Alcotest.test_case "hold throughput accounting" `Quick
        test_hold_throughput_sane;
    ]

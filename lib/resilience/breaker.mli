(** Per-register circuit breaker (ISSUE 3, graceful degradation).

    Wraps the decision "is this register worth querying right now?"
    so a reader session can stop hammering a saturated or failed
    register and serve its last-known-good snapshot instead (see
    {!Session}).  Classic three-state protocol:

    - [Closed]: traffic flows; [failure_threshold] {e consecutive}
      failures trip it;
    - [Open]: traffic short-circuits for [cooldown] clock units,
      then the next {!allow} transitions to [Half_open];
    - [Half_open]: probes are admitted; the first success closes the
      breaker, the first failure re-opens it (restarting the
      cooldown).

    The clock is caller-supplied ([~now]) so the breaker works
    unchanged over simulated steps (vsched) and wall-clock
    microseconds.  External watchdog signals (e.g. a supervisor
    declaring the writer dead) can force the trip with {!trip}. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type t

val create :
  ?failure_threshold:int -> ?cooldown:int -> now:(unit -> int) -> unit -> t
(** Defaults: [failure_threshold = 3], [cooldown = 256] clock units.
    @raise Invalid_argument if either is [< 1]. *)

val state : t -> state
(** Current state, {e after} folding in cooldown expiry (an [Open]
    breaker whose cooldown has elapsed reports [Half_open]). *)

val allow : t -> bool
(** Should the caller attempt a live operation?  [Closed] and
    [Half_open] say yes; [Open] says no until the cooldown elapses
    (at which point the breaker moves to [Half_open] and admits the
    probe). *)

val record_success : t -> unit
(** Live operation succeeded: resets the failure run and closes the
    breaker from [Half_open]. *)

val record_failure : t -> unit
(** Live operation failed: extends the failure run; trips [Closed] at
    the threshold and re-opens [Half_open] immediately. *)

val trip : t -> unit
(** Force the breaker [Open] now (watchdog signal), restarting the
    cooldown. *)

val trips : t -> int
(** Times the breaker has transitioned to [Open] since creation. *)

(* One-line replay command rendering.  See replay.mli. *)

type arg =
  | Flag of string
  | Int of string * int
  | Float of string * float
  | Str of string * string

let flag name = Flag name
let int name v = Int (name, v)
let float name v = Float (name, v)
let str name v = Str (name, v)

let arg_to_string = function
  | Flag name -> name
  | Int (name, v) -> Printf.sprintf "%s %d" name v
  | Float (name, v) -> Printf.sprintf "%s %g" name v
  | Str (name, v) -> Printf.sprintf "%s %s" name v

let render ~exe args = String.concat " " (exe :: List.map arg_to_string args)

(** Figure-style data: one x-axis (e.g. thread count) and several
    named series (e.g. one per algorithm), as in the paper's
    throughput plots.  Rendered as a table with one column per series
    plus, optionally, an ASCII log-scale chart — enough to eyeball
    the orderings and crossovers the reproduction is judged on. *)

type t

val create : title:string -> x_label:string -> t
val add : t -> series:string -> x:float -> y:float -> unit
val series_names : t -> string list

val to_table : t -> Table.t
(** Rows sorted by x; missing points rendered as "-". *)

val render_chart : ?width:int -> ?log_y:bool -> t -> string
(** ASCII chart: one line per (x, series) bar.  [log_y] (default
    true) matches the paper's log-scale throughput axes. *)

val to_csv : t -> string

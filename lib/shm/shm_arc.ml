(* ARC over a shared-memory mapping: packaging and the recovery
   bundle.  See shm_arc.mli. *)

module type INSTANCE = sig
  module M : Arc_mem.Mem_intf.S with type atomic = int
  module R : Arc_core.Arc.S with module Mem = M

  val mapping : Shm_mem.mapping
  val reg : R.t
end

type instance = (module INSTANCE)

let create ?(use_hint = true) m ~readers ~capacity ~init =
  (match Shm_mem.geometry m with
  | Some _ ->
      invalid_arg
        "Shm_arc.create: mapping already holds a register (attach-and-\
         recreate is not supported; fork instead)"
  | None -> ());
  let module M = (val Shm_mem.mem m) in
  let module R = Arc_core.Arc.Make (M) in
  let reg = R.create_with ~use_hint ~readers ~capacity ~init in
  Shm_mem.set_geometry m ~readers ~capacity;
  (module struct
    module M = M
    module R = R

    let mapping = m
    let reg = reg
  end : INSTANCE)

let recover (module I : INSTANCE) =
  match Shm_mem.recover I.mapping with
  | Error _ as e -> e
  | Ok rcv ->
      (* Buffer ordinal = slot index: Arc.create allocates slot
         contents in slot order and is the mapping's only buffer
         allocator ([create] above refuses mappings with prior
         geometry). *)
      let nslots = I.R.Debug.slots I.reg in
      List.iter
        (fun (c : Shm_mem.conviction) ->
          if c.ordinal < nslots then I.R.quarantine I.reg c.ordinal)
        rcv.convicted;
      let journaled = I.R.recover_crash I.reg in
      Ok (rcv, journaled)

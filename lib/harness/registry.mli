(** All algorithm × memory-instance combinations, pre-instantiated and
    exposed behind one uniform record, so experiment drivers and the
    CLI can iterate over algorithms as data and select them by
    {e capability} (the {!Arc_core.Register_intf.caps} record) instead
    of hard-coded name lists. *)

type entry = {
  name : string;
  caps : Arc_core.Register_intf.caps;
      (** wait-freedom, zero-copy reads, reader bound — queried by the
          figure builders to pick which algorithms a grid can host *)
  run_real : Config.real -> Config.result;
      (** on {!Arc_mem.Real_mem} via {!Real_runner} *)
  run_sim : ?strategy:Arc_vsched.Strategy.t -> Config.sim -> Config.result;
      (** on {!Arc_vsched.Sim_mem} via {!Sim_runner} *)
  run_sim_telemetry :
    (?strategy:Arc_vsched.Strategy.t ->
    Config.sim ->
    Config.result * Arc_obs.Obs.metric list)
    option;
      (** like [run_sim] but with a telemetry handle attached for the
          run (trace clocked by the virtual scheduler), returning the
          run's metric snapshot; [None] for algorithms without an
          observability surface (only the ARC family has one) *)
  run_fabric_sim :
    (?strategy:Arc_vsched.Strategy.t -> Config.fabric_sim -> Fabric_runner.result)
    option;
      (** sharded-fabric snapshot campaign via {!Fabric_runner} —
          present exactly when [caps.snapshot_read] holds (the
          versioned-read capability the fabric requires); discover
          with {!fabric_capable}, never by name *)
  count :
    readers:int ->
    size_words:int ->
    rounds:int ->
    reads_per_write:int ->
    Count_runner.per_op;
      (** on a counting instance via {!Count_runner} *)
}

val all : entry list
(** arc, arc-nohint, arc-dynamic, rf, peterson, rwlock, seqlock,
    lamport77, simpson. *)

val paper_set : entry list
(** The four algorithms of the paper's figures: arc, rf, peterson,
    rwlock. *)

val find : string -> entry
(** @raise Not_found for unknown names. *)

val names : string list

val supports : entry -> readers:int -> capacity_words:int -> bool
(** Whether the algorithm's reader bound admits [readers]. *)

val supporting : readers:int -> capacity_words:int -> entry list -> entry list
(** The entries whose capability record admits [readers] reader
    threads — the capability filter the figure builders use (e.g.
    Fig. 3 drops RF because its word-size bound cannot host the
    figure's thread counts). *)

val fabric_capable : entry list -> entry list
(** The entries whose capability record advertises [snapshot_read] —
    the fabric-eligibility query (ISSUE 6).  Every such entry carries
    a [run_fabric_sim] (enforced at module load). *)

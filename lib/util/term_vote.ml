let vote_bits = 31
let term_bits = Sys.int_size - vote_bits
let max_term = (1 lsl term_bits) - 1
let vote_mask = (1 lsl vote_bits) - 1

(* Vote field encodes candidate + 1, so 0 is "no vote" and candidate 0
   is representable; the largest encodable candidate is therefore one
   below the field's maximum value. *)
let max_candidate = vote_mask - 1

let none = 0

let make ~term ~vote =
  if term < 0 || term > max_term then
    invalid_arg (Printf.sprintf "Term_vote.make: term %d out of range" term);
  (match vote with
  | Some c when c < 0 || c > max_candidate ->
    invalid_arg (Printf.sprintf "Term_vote.make: candidate %d out of range" c)
  | _ -> ());
  (term lsl vote_bits) lor (match vote with None -> 0 | Some c -> c + 1)

let term w = (w lsr vote_bits) land max_term
let vote w = match w land vote_mask with 0 -> None | v -> Some (v - 1)

let succ_term w ~candidate =
  if term w >= max_term then
    invalid_arg
      (Printf.sprintf "Term_vote.succ_term: term overflow (term = %d, bound = %d)"
         (term w) max_term);
  make ~term:(term w + 1) ~vote:(Some candidate)

let pp ppf w =
  Format.fprintf ppf "@[<h>⟨term=%d,@ vote=%s⟩@]" (term w)
    (match vote w with None -> "none" | Some c -> string_of_int c)

let equal = Int.equal
let to_string w = Format.asprintf "%a" pp w

lib/baselines/lamport_reg.mli: Arc_core Arc_mem

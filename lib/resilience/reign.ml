(* Reign-fenced fabric elections (ISSUE 9).

   {!Election} arbitrates ONE register's writer seat.  A sharded
   fabric has one seat per shard — each with its own [term ∥ vote]
   word in the mapping's reign table ({!Arc_shm.Shm_mem}) — and a new
   problem the per-shard words cannot see: a cross-shard snapshot
   certified while some shard changed leaders may splice the old
   reign's value on one shard with the new reign's on another.  The
   snapshot algorithm's probe pass certifies simultaneity of
   {e values}, not of {e leadership}.

   The fix is one more word, fabric-wide: the {b configuration epoch}.
   Every completed handoff — any shard, any term — bumps it exactly
   once, after the successor's takeover (recovery of the dead leader's
   wreckage, DESIGN.md §6d) and {e before} the successor's writer
   handle is issued, hence before its first publish.  Snapshots
   bracket their probe window with two plain loads of this word
   ({!Arc_fabric.Fabric.Make.snapshot_certified}): an unchanged epoch
   proves no handoff completed inside the window, so every collected
   value was published by a reign ≤ the opening epoch.  A moved epoch
   is a typed verdict, never a silently served vector.

   This module supplies the two halves the fabric layer cannot:

   - {!Config}: the epoch word as a tiny substrate-polymorphic
     abstraction — [bump] is the only mutator, a wait-free
     fetch-and-add (not CAS-retry: bumps need not be exchanged for a
     specific prior value, only counted), mirrored into the process's
     reign telemetry gauge.
   - {!Make}: {!Election.Make} re-packaged so [campaign] interposes
     the config bump between the caller's takeover and the issue —
     the one ordering under which the certification argument above
     holds.  Everything else (vote CAS, fence discipline, outcome
     type) is the election's, unchanged. *)

module Reign_tel = Arc_fabric.Fabric.Reign_tel

(* The fabric-wide configuration epoch word.  For a shm fabric this is
   {!Arc_shm.Shm_mem.config_epoch_cell} (starts at 1, set by
   [alloc_reign_table]); heap harnesses pass any [atomic_contended]
   cell. *)
module Config (M : Arc_mem.Mem_intf.S) = struct
  type t = { cell : M.atomic }

  let of_cell cell = { cell }
  let cell t = t.cell
  let current t = M.load t.cell

  (* Record the handoff: one wait-free add, returning the new epoch.
     The telemetry gauge takes the max (several threads of one process
     can complete handoffs on different shards). *)
  let bump t =
    let e = 1 + M.fetch_and_add t.cell 1 in
    Atomic.incr Reign_tel.handoffs;
    let rec raise_to () =
      let cur = Atomic.get Reign_tel.epoch in
      if e > cur && not (Atomic.compare_and_set Reign_tel.epoch cur e) then
        raise_to ()
    in
    raise_to ();
    e
end

module Make (R : Arc_core.Register_intf.FENCEABLE) = struct
  module M = R.Mem
  module E = Election.Make (R)
  module C = Config (M)

  type t = { election : E.t; config : C.t }

  (* [word] is this shard's election word (for a shm fabric,
     {!Arc_shm.Shm_mem.shard_election_cell}); [config] the fabric-wide
     epoch cell shared by every shard's election. *)
  let create ?word ~candidate ~config freg =
    { election = E.create ?word ~candidate freg; config = C.of_cell config }

  let election t = t.election
  let config t = t.config
  let config_at t = C.current t.config
  let observe t = E.observe t.election
  let term t = E.term t.election
  let leader t = E.leader t.election

  type outcome =
    | Won of {
        writer : E.Fenced_reg.writer;
        term : int;
        recovered : int;
        config : int;
            (* THIS handoff's bump value — the epoch the new reign
               begins at.  Reign claims must use it, not a later load
               of the config word: concurrent handoffs on other shards
               may have bumped past it by the time the winner looks
               again, and a claim recorded too high would convict
               snapshots that legitimately contain this reign. *)
      }
    | Lost of { term : int; winner : int option }

  (* vote → prefence → takeover → {b config bump} → issue.  The bump
     rides inside the election's takeover slot so it lands after the
     shard's recovery (the successor exists, the deposed leader is
     fenced) and before [issue] (no publish under the new reign can
     precede the bump a certified snapshot keys on). *)
  let campaign ?from ?(takeover = fun () -> 0) t =
    let bumped = ref 0 in
    let takeover' () =
      let recovered = takeover () in
      bumped := C.bump t.config;
      recovered
    in
    match E.campaign ?from ~takeover:takeover' t.election with
    | E.Won { writer; term; recovered } ->
        Won { writer; term; recovered; config = !bumped }
    | E.Lost { term; winner } -> Lost { term; winner }
end

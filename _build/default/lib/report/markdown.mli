(** GitHub-flavoured markdown rendering of tables and series, used to
    keep EXPERIMENTS.md regenerable from the same data the CLI
    prints. *)

val of_table : Table.t -> string
(** Title as a bold paragraph, then a markdown pipe table. *)

val of_series : Series.t -> string
(** The series as a markdown pipe table (x column first). *)

val escape_cell : string -> string
(** Escape [|] and newlines so arbitrary cell text is table-safe. *)

lib/util/splitmix.mli:

let algorithm = "arc-dynamic"

module Packed = Arc_util.Packed

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type slot = {
    size : M.atomic;
    r_start : M.atomic;
    r_end : M.atomic;
    mutable content : M.buffer;
        (* Written only by the writer, and only while the slot is
           free; published to readers by the exchange on [current]
           (same happens-before edge as the slot's data). *)
  }

  type t = {
    slots : slot array;
    current : M.atomic;
    readers : int;
    capacity : int;
    hint : M.atomic;
    mutable last_slot : int;
    mutable reallocations : int;
    mutable writes : int;
  }

  type reader = { reg : t; mutable last_index : int }

  let algorithm = algorithm

  let caps =
    {
      Register_intf.wait_free = true;
      zero_copy = true;
      max_readers = (fun ~capacity_words:_ -> Some (Packed.max_count - 1));
    }

  let create ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Arc_dynamic.create: need at least one reader";
    if readers > Packed.max_count - 1 then
      invalid_arg "Arc_dynamic.create: readers exceed the 2^32 - 2 capacity";
    if capacity < 1 then invalid_arg "Arc_dynamic.create: capacity must be positive";
    if Array.length init > capacity then
      invalid_arg "Arc_dynamic.create: init longer than capacity";
    let nslots = readers + 2 in
    if nslots - 1 > Packed.max_index then
      invalid_arg "Arc_dynamic.create: slot count exceeds index field";
    let fresh_slot words =
      let r_start, r_end = M.atomic_contended_pair 0 0 in
      { size = M.atomic 0; r_start; r_end; content = M.alloc words }
    in
    (* Empty slots start with zero-word buffers: the whole point of
       the dynamic variant is paying only for what is stored. *)
    let slots =
      Array.init nslots (fun i -> fresh_slot (if i = 0 then Array.length init else 0))
    in
    M.write_words slots.(0).content ~src:init ~len:(Array.length init);
    M.store slots.(0).size (Array.length init);
    {
      slots;
      current = M.atomic_contended (Packed.make ~index:0 ~count:readers);
      readers;
      capacity;
      hint = M.atomic_contended (-1);
      last_slot = 0;
      reallocations = 0;
      writes = 0;
    }

  let reader reg i =
    if i < 0 || i >= reg.readers then
      invalid_arg "Arc_dynamic.reader: identity out of range";
    { reg; last_index = 0 }

  let read_view rd =
    let reg = rd.reg in
    let index = Packed.index (M.load reg.current) in
    if rd.last_index <> index then begin
      let released = reg.slots.(rd.last_index) in
      M.incr released.r_end;
      let fin = M.load released.r_end in
      if fin = M.load released.r_start then M.store reg.hint rd.last_index;
      let now = M.add_and_fetch reg.current 1 in
      rd.last_index <- Packed.index now
    end;
    let entry = reg.slots.(rd.last_index) in
    (entry.content, M.load entry.size)

  let read_with rd ~f =
    let buffer, len = read_view rd in
    f buffer len

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        if Array.length dst < len then
          invalid_arg "Arc_dynamic.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  let slot_free reg j =
    j <> reg.last_slot && M.load reg.slots.(j).r_start = M.load reg.slots.(j).r_end

  let find_free reg =
    let proposal =
      let h = M.load reg.hint in
      if h >= 0 then M.store reg.hint (-1);
      h
    in
    if proposal >= 0 && proposal < Array.length reg.slots && slot_free reg proposal
    then proposal
    else begin
      let n = Array.length reg.slots in
      let rec scan step =
        if step > n then failwith "Arc_dynamic.write: no free slot (invariant violated)"
        else begin
          let j = (reg.last_slot + step) mod n in
          M.cede ();
          if slot_free reg j then j else scan (step + 1)
        end
      in
      scan 1
    end

  (* Grow always; shrink only below half to avoid thrashing on
     small size oscillations. *)
  let needs_realloc entry len =
    let cap = M.capacity entry.content in
    len > cap || len * 2 < cap

  let write reg ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Arc_dynamic.write: bad length";
    if len > reg.capacity then invalid_arg "Arc_dynamic.write: exceeds capacity";
    let slot = find_free reg in
    let entry = reg.slots.(slot) in
    if needs_realloc entry len then begin
      (* The slot is free: no reader presence is accounted on it, so
         swapping the buffer races with nobody.  Readers holding views
         of the old buffer keep it alive via the GC. *)
      entry.content <- M.alloc len;
      reg.reallocations <- reg.reallocations + 1
    end;
    M.write_words entry.content ~src ~len;
    M.store entry.size len;
    M.store entry.r_start 0;
    M.store entry.r_end 0;
    let old = M.exchange reg.current (Packed.of_index slot) in
    let old_slot = Packed.index old in
    M.store reg.slots.(old_slot).r_start (Packed.count old);
    reg.last_slot <- slot;
    reg.writes <- reg.writes + 1

  let footprint_words reg =
    Array.fold_left (fun acc s -> acc + M.capacity s.content) 0 reg.slots

  let reallocations reg = reg.reallocations
end

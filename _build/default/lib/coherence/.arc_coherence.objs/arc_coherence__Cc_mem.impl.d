lib/coherence/cc_mem.ml: Arc_vsched Array Cache

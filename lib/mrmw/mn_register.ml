module Make (A : Arc_core.Register_intf.ALGORITHM) (M : Arc_mem.Mem_intf.S) = struct
  module R = A.Make (M)

  (* Snapshot layout in each sub-register: word 0 = timestamp, word 1
     = writer id, words 2.. = the value. *)
  let header = 2

  type t = {
    subs : R.t array;  (* one (1, writers-1+readers) register per writer *)
    writers : int;
    readers : int;
    capacity : int;
  }

  type writer = {
    reg : t;
    id : int;
    peers : R.reader array;  (* handle into every other writer's sub-register *)
    buf : int array;  (* staging: header + value *)
    mutable own_ts : int;
  }

  type reader = {
    handles : R.reader array;  (* one handle per sub-register *)
    scratch : int array;
    mutable scratch_len : int;  (* value words currently in scratch *)
    mutable last_ts : int;
    mutable last_wid : int;
  }

  (* Handle-identity layout inside sub-register w: other writers take
     identities 0..writers-2 (writer v compressed by skipping w),
     readers take writers-1..writers-2+readers. *)
  let writer_handle_id ~owner ~peer = if peer < owner then peer else peer - 1
  let reader_handle_id t r = t.writers - 1 + r

  let create ~writers ~readers ~capacity ~init =
    if writers < 1 then invalid_arg "Mn_register.create: need at least one writer";
    if readers < 1 then invalid_arg "Mn_register.create: need at least one reader";
    if capacity < 1 then invalid_arg "Mn_register.create: capacity must be positive";
    if Array.length init > capacity then invalid_arg "Mn_register.create: init too long";
    let sub_readers = writers - 1 + readers in
    (match R.caps.Arc_core.Register_intf.max_readers ~capacity_words:(capacity + header) with
    | Some bound when sub_readers > bound ->
      invalid_arg
        (Printf.sprintf
           "Mn_register.create: %d subscribers exceed %s's bound of %d" sub_readers
           R.algorithm bound)
    | _ -> ());
    let sub_init = Array.make (header + Array.length init) 0 in
    (* ts = 0, writer id 0: everyone agrees on the initial value. *)
    Array.blit init 0 sub_init header (Array.length init);
    let subs =
      Array.init writers (fun _ ->
          R.create ~readers:sub_readers ~capacity:(capacity + header) ~init:sub_init)
    in
    { subs; writers; readers; capacity }

  let writer t id =
    if id < 0 || id >= t.writers then
      invalid_arg "Mn_register.writer: identity out of range";
    let peer_ids = List.filter (( <> ) id) (List.init t.writers Fun.id) in
    let peers =
      Array.of_list
        (List.map
           (fun peer -> R.reader t.subs.(peer) (writer_handle_id ~owner:peer ~peer:id))
           peer_ids)
    in
    { reg = t; id; peers; buf = Array.make (header + t.capacity) 0; own_ts = 0 }

  let reader t id =
    if id < 0 || id >= t.readers then
      invalid_arg "Mn_register.reader: identity out of range";
    {
      handles = Array.map (fun sub -> R.reader sub (reader_handle_id t id)) t.subs;
      scratch = Array.make t.capacity 0;
      scratch_len = 0;
      last_ts = 0;
      last_wid = 0;
    }

  let timestamp_of buffer = M.read_word buffer 0

  let write w ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Mn_register.write: bad length";
    if len > w.reg.capacity then invalid_arg "Mn_register.write: exceeds capacity";
    let max_ts = ref w.own_ts in
    Array.iter
      (fun peer ->
        let ts = R.read_with peer ~f:(fun buffer _len -> timestamp_of buffer) in
        if ts > !max_ts then max_ts := ts)
      w.peers;
    let ts = !max_ts + 1 in
    w.buf.(0) <- ts;
    w.buf.(1) <- w.id;
    Array.blit src 0 w.buf header len;
    R.write w.reg.subs.(w.id) ~src:w.buf ~len:(header + len);
    w.own_ts <- ts

  (* Two writers can legitimately publish {e equal} timestamps (both
     collect before either publishes, picking the same [1 + max]), so
     ⟨ts, writer-id⟩ is the register's logical clock: the writer id is
     the tie-break that makes the winner schedule-independent.  A
     timestamp-alone comparison leaves equal-ts writes unordered and
     readers may disagree on the winner — the conviction target of the
     [read_into_ts_only] negative control below. *)
  let beats ~ts ~wid ~best_ts ~best_wid =
    ts > best_ts || (ts = best_ts && wid > best_wid)

  let collect rd ~keep =
    let best_ts = ref (-1) and best_wid = ref (-1) in
    rd.scratch_len <- 0;
    Array.iter
      (fun handle ->
        R.read_with handle ~f:(fun buffer len ->
            let ts = M.read_word buffer 0 in
            let wid = M.read_word buffer 1 in
            if keep ~ts ~wid ~best_ts:!best_ts ~best_wid:!best_wid then begin
              best_ts := ts;
              best_wid := wid;
              let value_len = len - header in
              for i = 0 to value_len - 1 do
                rd.scratch.(i) <- M.read_word buffer (header + i)
              done;
              rd.scratch_len <- value_len
            end))
      rd.handles;
    rd.last_ts <- !best_ts;
    rd.last_wid <- !best_wid

  let finish rd ~dst =
    if Array.length dst < rd.scratch_len then
      invalid_arg "Mn_register.read_into: dst too short";
    Array.blit rd.scratch 0 dst 0 rd.scratch_len;
    rd.scratch_len

  let read_into rd ~dst =
    (* Collect all sub-registers, keeping the snapshot with the
       lexicographically largest ⟨ts, writer-id⟩; the copy happens
       inside read_with, the only window in which the snapshot is
       guaranteed stable. *)
    collect rd ~keep:beats;
    finish rd ~dst

  (* Negative control: the broken comparison the tie-break exists to
     rule out.  Keeps the {e first} maximal timestamp scanned, so the
     winner among equal-ts writes depends on sub-register order and
     publish timing — the vsched regression convicts it by finding a
     schedule where a reader's ⟨ts, wid⟩ sequence goes backwards. *)
  let read_into_ts_only rd ~dst =
    collect rd ~keep:(fun ~ts ~wid:_ ~best_ts ~best_wid:_ -> ts > best_ts);
    finish rd ~dst

  let last_timestamp rd = rd.last_ts
  let last_writer rd = rd.last_wid
end

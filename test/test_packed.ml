(* The ⟨index, count⟩ packing every algorithm's synchronization word
   relies on (Arc_util.Packed). *)

module Packed = Arc_util.Packed

let check = Alcotest.(check int)

let test_layout () =
  check "count field keeps the paper's 32 bits" 32 Packed.count_bits;
  check "index takes the rest of the native int" (Sys.int_size - 32) Packed.index_bits;
  check "max_count is 2^32 - 1" ((1 lsl 32) - 1) Packed.max_count

let test_roundtrip_simple () =
  let w = Packed.make ~index:5 ~count:17 in
  check "index" 5 (Packed.index w);
  check "count" 17 (Packed.count w)

let test_extremes () =
  let w = Packed.make ~index:Packed.max_index ~count:Packed.max_count in
  check "max index" Packed.max_index (Packed.index w);
  check "max count" Packed.max_count (Packed.count w);
  let z = Packed.make ~index:0 ~count:0 in
  check "zero word" 0 z

let test_of_index () =
  let w = Packed.of_index 42 in
  check "index preserved" 42 (Packed.index w);
  check "count cleared" 0 (Packed.count w)

let test_succ_count () =
  let w = Packed.make ~index:9 ~count:100 in
  let w' = Packed.succ_count w in
  check "count incremented" 101 (Packed.count w');
  check "index untouched" 9 (Packed.index w');
  (* succ_count is exactly what AtomicAddAndFetch(current, 1) does. *)
  check "matches +1 on the raw word" (w + 1) w'

(* The overflow guard raises the repository-wide typed saturation
   error (ISSUE 8) — the same exception the registers' post-increment
   guards and the admission gate raise, rebound as
   [Register_intf.Saturated]. *)
let test_succ_overflow_guard () =
  let raises w =
    match Packed.succ_count w with
    | exception Arc_util.Saturation.Saturated _ -> ()
    | _ -> Alcotest.fail "expected Saturated"
  in
  raises (Packed.make ~index:3 ~count:Packed.max_count);
  raises (Packed.make ~index:3 ~count:Packed.max_readers)

(* The exact saturation boundary: 2^32 - 3 is the last count that may
   be incremented; 2^32 - 2 (= max_readers, the paper's capacity
   claim) must refuse — one increment of head-room below the raw
   field maximum, so saturation is always detected before any bits
   can carry into the index field. *)
let test_saturation_boundary () =
  check "max_readers is 2^32 - 2" ((1 lsl 32) - 2) Packed.max_readers;
  let last_ok = Packed.make ~index:1 ~count:(Packed.max_readers - 1) in
  let w' = Packed.succ_count last_ok in
  check "count 2^32 - 3 increments to the bound" Packed.max_readers
    (Packed.count w');
  check "index intact at the boundary" 1 (Packed.index w');
  (match Packed.succ_count w' with
  | exception Arc_util.Saturation.Saturated msg ->
    Alcotest.(check bool)
      "guard message names the bound" true
      (String.length msg > 0
      && String.split_on_char ' ' msg <> [ msg ] (* has detail *))
  | _ -> Alcotest.fail "count 2^32 - 2 must refuse to increment");
  (* The raw wraparound the guard prevents: +1 on a max_count word
     would carry into the index bits. *)
  let raw = Packed.make ~index:1 ~count:Packed.max_count + 1 in
  check "unguarded +1 would corrupt the index" 2 (Packed.index raw);
  check "unguarded +1 would wrap the count" 0 (Packed.count raw)

let test_field_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Packed.make ~index:(-1) ~count:0);
  raises (fun () -> Packed.make ~index:0 ~count:(-1));
  raises (fun () -> Packed.make ~index:(Packed.max_index + 1) ~count:0);
  raises (fun () -> Packed.make ~index:0 ~count:(Packed.max_count + 1))

let test_paper_init () =
  (* I1: current ← N means index 0, count N. *)
  let n = 1000 in
  let w = Packed.make ~index:0 ~count:n in
  check "raw value is N as in the paper" n w

let test_independence () =
  (* Incrementing the count never leaks into the index field below
     the overflow bound. *)
  let w = ref (Packed.make ~index:7 ~count:0) in
  for _ = 1 to 10_000 do
    w := Packed.succ_count !w
  done;
  check "index stable after 10k increments" 7 (Packed.index !w);
  check "count accumulated" 10_000 (Packed.count !w)

let test_to_string () =
  let s = Packed.to_string (Packed.make ~index:2 ~count:3) in
  Alcotest.(check bool) "mentions both fields" true
    (String.length s > 0
    && String.length (String.concat "" (String.split_on_char '2' s))
       < String.length s)

let prop_roundtrip =
  QCheck.Test.make ~name:"packed roundtrip for arbitrary fields" ~count:1000
    QCheck.(pair (int_bound Packed.max_index) (int_bound Packed.max_count))
    (fun (index, count) ->
      let w = Packed.make ~index ~count in
      Packed.index w = index && Packed.count w = count)

let prop_succ_is_incr =
  QCheck.Test.make ~name:"succ_count = raw +1 below overflow" ~count:1000
    QCheck.(pair (int_bound Packed.max_index) (int_bound (Packed.max_readers - 1)))
    (fun (index, count) ->
      let w = Packed.make ~index ~count in
      Packed.succ_count w = w + 1)

let suite =
  [
    Alcotest.test_case "layout" `Quick test_layout;
    Alcotest.test_case "roundtrip simple" `Quick test_roundtrip_simple;
    Alcotest.test_case "extremes" `Quick test_extremes;
    Alcotest.test_case "of_index" `Quick test_of_index;
    Alcotest.test_case "succ_count" `Quick test_succ_count;
    Alcotest.test_case "succ overflow guard" `Quick test_succ_overflow_guard;
    Alcotest.test_case "saturation boundary" `Quick test_saturation_boundary;
    Alcotest.test_case "field validation" `Quick test_field_validation;
    Alcotest.test_case "paper init encoding" `Quick test_paper_init;
    Alcotest.test_case "field independence" `Quick test_independence;
    Alcotest.test_case "to_string" `Quick test_to_string;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_succ_is_incr;
  ]

(** Simpson's four-slot fully asynchronous communication mechanism
    (IEE Proceedings 1990) — the paper's reference [12]: the classic
    wait-free multi-word atomic {e (1,1)} register, from plain
    single-word reads/writes only.

    Four data slots arranged as two pairs.  The writer always writes
    into the pair the reader is {e not} announcing ([pair := ¬reading])
    and within it the slot it last left free; the reader follows
    [latest]/[slot] and announces the pair it is using.  Neither side
    ever waits, yet reader and writer can never collide on a slot.

    Included to complete the historical ladder the paper's §2 walks —
    (1,1) [12] → (1,N) [11] → RMW-based (1,N) [2, ARC] — and as the
    one-reader special case in the comparative experiments.
    [max_readers] is [Some 1]. *)

val algorithm : string

module Make (M : Arc_mem.Mem_intf.S) : sig
  include Arc_core.Register_intf.S with module Mem = M
end

test/test_arc_dynamic.ml: Alcotest Arc_core Arc_mem Arc_util Arc_workload Array Printf

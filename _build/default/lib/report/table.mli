(** Plain-text tables for experiment output — aligned columns, a
    header rule, and optional per-cell formatting, so every
    regenerated figure/table prints in a shape directly comparable to
    the paper's. *)

type t

val create : title:string -> columns:string list -> t
(** @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_float_row : t -> label:string -> float list -> unit
(** Convenience: a label cell followed by ["%.3g"]-formatted floats. *)

val rows : t -> int
val title : t -> string
val columns : t -> string list
val body : t -> string list list
(** Rows in insertion order. *)

val render : t -> string
val print : t -> unit
val to_csv : t -> string
(** Comma-separated form (with minimal quoting) of the same data. *)

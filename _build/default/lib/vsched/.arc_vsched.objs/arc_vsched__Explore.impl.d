lib/vsched/explore.ml: Array List Sched Strategy

examples/quickstart.ml: Arc_core Arc_mem Array Domain Fun List Printf

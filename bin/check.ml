(* arc-check: schedule-exploration harness as a standalone tool.

   Drives a register algorithm through many seeded schedules on the
   virtual scheduler, validating every snapshot word-by-word and
   checking the recorded history against the paper's atomicity
   criterion.  Exit status 0 = clean, 1 = violation found (with the
   seed and strategy to replay it).

     dune exec bin/check.exe -- --algo arc --seeds 100
     dune exec bin/check.exe -- --algo rwlock --strategy steal --readers 7

   --faults switches to the bounded fault campaign (ISSUE 2): every
   wait-free algorithm runs through seeded (schedule, fault-plan)
   pairs — crash-stop readers, stalled threads, torn writer copies,
   crashed writers — judged by the crash-aware checker, the liveness
   checks and (for ARC) the presence-ledger audit, plus a
   silent-tear negative control that must be rejected:

     dune exec bin/check.exe -- --faults --seeds 100
*)

module Config = Arc_harness.Config
module Registry = Arc_harness.Registry
module Fabric_runner = Arc_harness.Fabric_runner
module Checker = Arc_trace.Checker
module Audit = Arc_trace.Audit
module History = Arc_trace.History
module Strategy = Arc_vsched.Strategy
open Cmdliner

let strategy_of ~name ~seed ~fibers ~steps =
  match name with
  | "random" -> Strategy.random ~seed
  | "round-robin" -> Strategy.round_robin ()
  | "burst" -> Strategy.random_burst ~seed ~max_burst:50
  | "steal" ->
    Strategy.steal ~seed
      ~base:(Strategy.random ~seed:(seed + 1))
      ~probability:0.01 ~min_pause:50 ~max_pause:500
  | "pct" -> Strategy.pct ~seed ~fibers ~depth:4 ~expected_steps:steps
  | other -> invalid_arg (Printf.sprintf "unknown strategy %S" other)

(* {1 The --faults campaign} *)

module Campaign = Arc_fault.Campaign
module Fault_plan = Arc_fault.Fault_plan
module RA = Arc_core.Arc.Make (Campaign.Mem)
module CA = Campaign.Make (RA)
module RN = Arc_core.Arc_nohint.Make (Campaign.Mem)
module CN = Campaign.Make (RN)
module RD = Arc_core.Arc_dynamic.Make (Campaign.Mem)
module CD = Campaign.Make (RD)
module RF_reg = Arc_baselines.Rf.Make (Campaign.Mem)
module CF = Campaign.Make (RF_reg)

let arc_audit reg ~crashed_readers ~writer_crashed =
  Campaign.arc_audit
    {
      Campaign.presence_slack = (fun () -> RA.Debug.presence_slack reg);
      free_slot_exists = (fun () -> RA.Debug.free_slot_exists reg);
    }
    ~crashed_readers ~writer_crashed

(* One row per wait-free algorithm, with both entry points of its
   campaign instantiation: the seeded sweep and the single-seed replay
   (campaign outcome/result types are shared, so the functor results
   store as plain functions). *)
type fault_algo = {
  fname : string;
  caps : Arc_core.Register_intf.caps;
  frun : Campaign.cfg -> Campaign.outcome;
  freplay :
    seed:int ->
    Campaign.cfg ->
    Fault_plan.t * Campaign.run_result * (int * string) list;
}

let fault_algos =
  [
    {
      fname = "arc";
      caps = RA.caps;
      frun = (fun cfg -> CA.run ~audit:arc_audit cfg);
      freplay = (fun ~seed cfg -> CA.run_seed ~audit:arc_audit ~seed cfg);
    };
    {
      fname = "arc-nohint";
      caps = RN.caps;
      frun = (fun cfg -> CN.run cfg);
      freplay = (fun ~seed cfg -> CN.run_seed ~seed cfg);
    };
    {
      fname = "arc-dynamic";
      caps = RD.caps;
      frun = (fun cfg -> CD.run cfg);
      freplay = (fun ~seed cfg -> CD.run_seed ~seed cfg);
    };
    {
      fname = "rf";
      caps = RF_reg.caps;
      frun = (fun cfg -> CF.run cfg);
      freplay = (fun ~seed cfg -> CF.run_seed ~seed cfg);
    };
  ]

let fault_cfg ~caps ~seeds ~readers ~size ~steps =
  let readers =
    match caps.Arc_core.Register_intf.max_readers ~capacity_words:size with
    | Some bound when readers > bound -> bound
    | _ -> readers
  in
  {
    Campaign.default with
    readers;
    size_words = size;
    max_steps = steps;
    schedules = seeds;
    seed = 2024;
  }

let fault_replay_command ~name ~readers ~size ~steps ~seed =
  Arc_report.Replay.(
    render ~exe:"dune exec bin/check.exe --"
      [
        flag "--faults";
        str "--algo" name;
        int "--readers" readers;
        int "--size" size;
        int "--steps" steps;
        int "--replay-seed" seed;
      ])

let selected_fault_algos algo =
  if algo = "all" then fault_algos
  else
    match List.find_opt (fun a -> a.fname = algo) fault_algos with
    | Some a -> [ a ]
    | None ->
      Printf.eprintf "unknown fault-campaign algorithm %S; known: %s, all\n" algo
        (String.concat ", " (List.map (fun a -> a.fname) fault_algos));
      exit 2

(* Re-execute one derived campaign seed (as printed by a violation
   line) for one algorithm, showing the fault plan it maps to and the
   full judgement. *)
let run_fault_replay algo seed readers size steps =
  let a =
    match List.find_opt (fun a -> a.fname = algo) fault_algos with
    | Some a -> a
    | None ->
      Printf.eprintf
        "--replay-seed needs a single algorithm (--algo); known: %s\n"
        (String.concat ", " (List.map (fun a -> a.fname) fault_algos));
      exit 2
  in
  let cfg = fault_cfg ~caps:a.caps ~seeds:1 ~readers ~size ~steps in
  Printf.printf "replaying seed %d on %s (%d readers, %d words, %d steps)\n"
    seed algo cfg.Campaign.readers size steps;
  let plan, r, violations = a.freplay ~seed cfg in
  if Fault_plan.size plan = 0 then Printf.printf "fault plan: (empty)\n"
  else Format.printf "fault plan:@,%a@." Fault_plan.pp plan;
  Printf.printf
    "result: %d writes, %d reads, %d torn; writer crashed: %b; stalls %d; %s\n"
    r.Campaign.writes r.Campaign.reads r.Campaign.torn r.Campaign.crashed.(0)
    r.Campaign.stats.Arc_fault.Fault_mem.stalls
    (match r.Campaign.check with
    | Ok (rep, o) ->
      Printf.sprintf "check ok (%d reads, pending write %s)"
        rep.Checker.reads_checked
        (Checker.crash_outcome_name o)
    | Error v -> Format.asprintf "check FAILED: %a" Checker.pp_violation v);
  if violations = [] then Printf.printf "verdict: PASS\n"
  else begin
    List.iter
      (fun (_, msg) -> Printf.printf "violation: %s\n" msg)
      (List.rev violations);
    Printf.printf "verdict: FAIL\n";
    exit 1
  end

let run_faults algo seeds readers size steps =
  Printf.printf
    "fault campaign: %d schedules/algorithm (seed base 2024), %d readers, %d \
     words, %d steps\n\n"
    seeds readers size steps;
  Printf.printf "%-14s %9s %11s %6s %5s %8s %11s  %s\n" "algorithm" "schedules"
    "crashes r/w" "stalls" "tears" "reads" "pending v/e" "verdict";
  let failures = ref 0 in
  let row a =
    let cfg = fault_cfg ~caps:a.caps ~seeds ~readers ~size ~steps in
    let o = a.frun cfg in
    let ok = Campaign.clean o in
    if not ok then incr failures;
    Printf.printf "%-14s %9d %11s %6d %5d %8d %11s  %s\n" a.fname
      o.Campaign.schedules_run
      (Printf.sprintf "%d/%d" o.Campaign.reader_crashes o.Campaign.writer_crashes)
      o.Campaign.stalls o.Campaign.tears o.Campaign.reads_checked
      (Printf.sprintf "%d/%d" o.Campaign.vanished o.Campaign.took_effect)
      (if ok then "PASS" else "FAIL");
    if not ok then
      List.iter
        (fun (seed, msg) ->
          Printf.printf "    violation [seed %d]: %s\n      replay: %s\n" seed
            msg
            (fault_replay_command ~name:a.fname ~readers ~size ~steps ~seed))
        (List.rev o.Campaign.violations)
  in
  List.iter row (selected_fault_algos algo);
  (* Negative control proving non-vacuity: a silently torn writer copy
     (an unsound fault: the copy stops early yet reports success) must
     be detected as torn snapshots by the readers. *)
  let plan =
    Fault_plan.tear ~fiber:0 ~at_copy:2
      ~at_word:(max 1 (size / 4))
      ~silent:true Fault_plan.empty
  in
  let control, _ =
    CA.run_plan ~plan
      ~strategy:(Strategy.random ~seed:2024)
      (fault_cfg ~caps:RA.caps ~seeds ~readers ~size ~steps)
  in
  let detected = control.Campaign.torn > 0 in
  if not detected then incr failures;
  Printf.printf "%-14s %s\n" "tear-control"
    (if detected then "REJECTED (expected)"
     else "MISSED — fault layer or checker is broken");
  if !failures > 0 then exit 1

(* {1 The --fabric campaign (ISSUE 6)}

   Every fabric-capable algorithm (discovered by the snapshot_read
   capability, never by name) runs seeded fabric campaigns: writer
   fibers over their owned shards, scanner fibers taking cross-shard
   snapshots, every run judged by the cross-shard checker and against
   the wait-freedom retry bound.  A collect-only negative control must
   be convicted, proving the judgement is not vacuous. *)

let run_fabric algo seeds strategy_name shards readers size steps metrics =
  let eligible = Registry.fabric_capable Registry.all in
  let entries =
    if algo = "all" then eligible
    else
      match List.find_opt (fun e -> e.Registry.name = algo) eligible with
      | Some e -> [ e ]
      | None ->
        Printf.eprintf "algorithm %S is not fabric-capable; eligible: %s, all\n"
          algo
          (String.concat ", " (List.map (fun e -> e.Registry.name) eligible));
        exit 2
  in
  let writers = max 1 (shards / 2) in
  let cfg =
    {
      Config.fab_shards = shards;
      fab_writers = writers;
      fab_scanners = readers;
      fab_size_words = size;
      fab_steps = steps;
      fab_seed = 0;
      fab_atomic = true;
    }
  in
  Printf.printf
    "fabric campaign: %d seeds × %s, %d shards × %d writers × %d scanners, %d \
     words, %d steps\n\n"
    seeds strategy_name shards writers readers size steps;
  Printf.printf "%-16s %9s %9s %8s %9s %8s  %s\n" "algorithm" "snapshots"
    "borrowed" "retries" "deposits" "writes" "verdict";
  let failures = ref 0 in
  let retry_cap (r : Fabric_runner.result) =
    (* Public snapshots plus writers' helping scans (one per deposit),
       each allowed at most 2·shards + 3 failed probe passes. *)
    (r.Fabric_runner.fr_snapshots + r.Fabric_runner.fr_deposits)
    * ((2 * shards) + 3)
  in
  let row (entry : Registry.entry) =
    let run = Option.get entry.Registry.run_fabric_sim in
    let snaps = ref 0 and borrowed = ref 0 and retries = ref 0 in
    let deposits = ref 0 and writes = ref 0 in
    let violations = ref [] in
    for seed = 1 to seeds do
      let strategy =
        strategy_of ~name:strategy_name ~seed ~fibers:(writers + readers) ~steps
      in
      let r = run ~strategy { cfg with Config.fab_seed = seed } in
      snaps := !snaps + r.Fabric_runner.fr_snapshots;
      borrowed := !borrowed + r.Fabric_runner.fr_borrowed;
      retries := !retries + r.Fabric_runner.fr_retries;
      deposits := !deposits + r.Fabric_runner.fr_deposits;
      writes := !writes + r.Fabric_runner.fr_writes;
      if r.Fabric_runner.fr_torn > 0 then
        violations :=
          (seed,
           Printf.sprintf "%d within-shard torn values" r.Fabric_runner.fr_torn)
          :: !violations;
      if r.Fabric_runner.fr_retries > retry_cap r then
        violations :=
          (seed,
           Printf.sprintf "wait-freedom bound violated: %d retries"
             r.Fabric_runner.fr_retries)
          :: !violations;
      match Fabric_runner.check r with
      | Ok _ -> ()
      | Error v ->
        violations :=
          (seed, Format.asprintf "%a" Checker.pp_fabric_violation v)
          :: !violations
    done;
    let ok = !violations = [] in
    if not ok then incr failures;
    Printf.printf "%-16s %9d %9d %8d %9d %8d  %s\n" entry.Registry.name !snaps
      !borrowed !retries !deposits !writes
      (if ok then "PASS" else "FAIL");
    List.iter
      (fun (seed, msg) -> Printf.printf "    violation [seed %d]: %s\n" seed msg)
      (List.rev !violations)
  in
  List.iter row entries;
  (* Negative control: the collect-only arm of the first eligible
     algorithm must be convicted as a torn snapshot by the checker. *)
  let entry = List.hd entries in
  let run = Option.get entry.Registry.run_fabric_sim in
  let convicted = ref false in
  let control_runs = max 8 (min seeds 32) in
  for seed = 1 to control_runs do
    if not !convicted then
      let r =
        run
          ~strategy:(Strategy.random ~seed)
          { cfg with Config.fab_seed = seed; fab_atomic = false }
      in
      match Fabric_runner.check r with
      | Error (Checker.Torn_snapshot _) -> convicted := true
      | Ok _ | Error _ -> ()
  done;
  if not !convicted then incr failures;
  Printf.printf "%-16s %s\n" "torn-control"
    (if !convicted then "REJECTED (expected)"
     else "MISSED — fabric checker is broken");
  if metrics then begin
    (* The simulated fabric has no elections, so the reign gauges stay
       at their resting values — printed anyway so the arc_reign_*
       surface is uniform across arc-check/arc-soak/arc-crash. *)
    print_newline ();
    print_string (Arc_obs.Obs.prometheus (Arc_fabric.Fabric.reign_metrics ()))
  end;
  if !failures > 0 then exit 1

(* {1 Offline re-judgement (--history)}

   A persisted history — typically dumped by arc-crash next to a kept
   register mapping — re-run through the crash-aware checker by a
   process that saw none of the original run.  The crash context
   (recovery fence, pending write) comes from the dump's meta lines;
   --shm overrides the fence with the authoritative value persisted in
   the mapping's superblock, which also cross-checks that the dump and
   the mapping belong to the same crash. *)

let run_history hist_path shm_path =
  let h, meta = History.load hist_path in
  let lookup k = List.assoc_opt k meta in
  let pending_write =
    match (lookup "pending_seq", lookup "pending_invoked") with
    | Some seq, Some invoked -> Some (seq, invoked)
    | _ -> None
  in
  let fence =
    match shm_path with
    | None -> lookup "fence"
    | Some p ->
      let m = Arc_shm.Shm_mem.attach ~path:p in
      let f = Arc_shm.Shm_mem.fence_at m in
      let e = Arc_shm.Shm_mem.epoch m in
      Printf.printf "shm %s: epoch %d, fence_at %d, %d publishes\n" p e f
        (Arc_shm.Shm_mem.publish_seq m);
      (match lookup "epoch" with
      | Some de when de <> e ->
        Printf.printf
          "note: dump records epoch %d but the mapping is at %d — the mapping \
           was recovered again after this dump\n"
          de e
      | _ -> ());
      Arc_shm.Shm_mem.close m;
      if f > 0 then Some f else None
  in
  Printf.printf "history %s: %d events (%d writes, %d reads), pending %s, fence %s\n"
    hist_path (History.size h)
    (List.length (History.writes h))
    (List.length (History.reads h))
    (match pending_write with
    | Some (seq, invoked) -> Printf.sprintf "write %d invoked at %d" seq invoked
    | None -> "none")
    (match fence with Some f -> string_of_int f | None -> "none");
  match Checker.check_crash ?pending_write ?fence h with
  | Ok (report, outcome) ->
    Printf.printf "check ok: %d reads, %d writes, pending write %s\n"
      report.Checker.reads_checked report.Checker.writes_checked
      (Checker.crash_outcome_name outcome)
  | Error v ->
    Format.printf "check FAILED: %a@." Checker.pp_violation v;
    exit 1

let rec run faults fabric shards replay_seed history shm algo seeds strategy_name
    readers size steps verbose metrics =
  match (history, replay_seed) with
  | Some hist_path, _ -> run_history hist_path shm
  | None, Some seed ->
    run_fault_replay (Option.value algo ~default:"arc") seed readers size steps
  | None, None when fabric ->
    (* Fabric campaigns default to every fabric-capable algorithm. *)
    run_fabric
      (Option.value algo ~default:"all")
      seeds strategy_name shards readers size steps metrics
  | None, None ->
    (* The default algorithm set differs per mode: single-algorithm
       schedule checks default to arc, the fault campaign to all. *)
    let algo = Option.value algo ~default:(if faults then "all" else "arc") in
    run_checks faults algo seeds strategy_name readers size steps verbose metrics

and run_checks faults algo seeds strategy_name readers size steps verbose metrics
    =
  if faults then begin
    if metrics then
      Printf.eprintf "note: --metrics applies to schedule checks, not --faults\n";
    run_faults algo seeds readers size steps
  end
  else if algo = "all" then
    List.iter
      (fun name ->
        run_checks false name seeds strategy_name readers size steps verbose
          metrics)
      Registry.names
  else run_one algo seeds strategy_name readers size steps verbose metrics

and run_one algo seeds strategy_name readers size steps verbose metrics =
  let entry =
    try Registry.find algo
    with Not_found ->
      Printf.eprintf "unknown algorithm %S; known: %s, all\n" algo
        (String.concat ", " Registry.names);
      exit 2
  in
  let readers =
    match entry.Registry.caps.Arc_core.Register_intf.max_readers ~capacity_words:size with
    | Some bound when readers > bound ->
      Printf.printf "note: %s supports at most %d readers; clamping\n" algo bound;
      bound
    | _ -> readers
  in
  let violations = ref 0 in
  let total_reads = ref 0 in
  let worst_read = ref 0 in
  let last_metrics = ref [] in
  for seed = 1 to seeds do
    let cfg =
      {
        Config.sim_readers = readers;
        sim_size_words = size;
        max_steps = steps;
        sim_workload = Config.Verify;
        sim_record = 8_000;
        sim_seed = seed;
      }
    in
    let strategy =
      strategy_of ~name:strategy_name ~seed ~fibers:(readers + 1) ~steps
    in
    let result =
      match (metrics, entry.Registry.run_sim_telemetry) with
      | true, Some f ->
        let r, ms = f ~strategy cfg in
        last_metrics := ms;
        r
      | _ -> entry.Registry.run_sim ~strategy cfg
    in
    total_reads := !total_reads + result.Config.reads;
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          incr violations;
          Printf.printf "VIOLATION [seed %d, strategy %s]: %s\n" seed strategy_name
            msg)
        fmt
    in
    if result.Config.torn > 0 then fail "%d torn snapshots" result.Config.torn;
    (match result.Config.history with
    | None -> ()
    | Some h ->
      (match Checker.check h with
      | Ok report ->
        if verbose then
          Printf.printf
            "seed %3d: ok — %d reads (%d fast-path candidates), %d writes\n" seed
            report.Checker.reads_checked report.Checker.fast_path_candidates
            report.Checker.writes_checked
      | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_violation v));
      let audit = Audit.of_history h in
      if audit.Audit.reads.Audit.count > 0 then
        worst_read := max !worst_read audit.Audit.reads.Audit.max_duration)
  done;
  Printf.printf
    "%s: %d seeds × %s, %d reads checked, worst read duration %d steps — %s\n" algo
    seeds strategy_name !total_reads !worst_read
    (if !violations = 0 then "CLEAN" else Printf.sprintf "%d VIOLATIONS" !violations);
  if metrics then
    if !last_metrics = [] then
      Printf.printf "# no telemetry surface for algorithm %s\n" algo
    else begin
      (* Register telemetry of the final explored schedule (each seed
         runs a fresh register, so cumulative output would just sum
         identically-shaped runs). *)
      Printf.printf "# telemetry of seed %d (the final schedule)\n" seeds;
      print_string (Arc_obs.Obs.prometheus !last_metrics)
    end;
  if !violations > 0 then exit 1

let cmd =
  let algo =
    Arg.(
      value & opt (some string) None
      & info [ "algo" ] ~docv:"NAME"
          ~doc:
            "Algorithm, or \"all\" (default: arc for schedule checks, all \
             for --faults).")
  in
  let seeds =
    Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N" ~doc:"Schedules to explore.")
  in
  let strategy =
    Arg.(
      value & opt string "random"
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Scheduling strategy: random, round-robin, burst, steal, pct.")
  in
  let readers =
    Arg.(value & opt int 3 & info [ "readers" ] ~docv:"N" ~doc:"Reader fibers.")
  in
  let size =
    Arg.(value & opt int 16 & info [ "size" ] ~docv:"WORDS" ~doc:"Snapshot words.")
  in
  let steps =
    Arg.(
      value & opt int 25_000
      & info [ "steps" ] ~docv:"N" ~doc:"Simulated steps per schedule.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-seed lines.") in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "After the schedule checks, print the register telemetry of the \
             final explored schedule as a Prometheus-style text dump \
             (fast/slow reads per reader, hint hits, write probes, trace \
             volume).  Only the ARC family has a telemetry surface.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Run the bounded fault campaign (crash-stop readers, stalls, torn \
             copies, writer crashes) across the wait-free algorithms and print \
             a pass/fail table; exit 1 on any violation or a missed negative \
             control.")
  in
  let fabric =
    Arg.(
      value & flag
      & info [ "fabric" ]
          ~doc:
            "Run the sharded-fabric snapshot campaign (ISSUE 6) across every \
             fabric-capable algorithm (discovered via the snapshot_read \
             capability): seeded adversarial schedules judged by the \
             cross-shard checker and the wait-freedom retry bound, plus a \
             collect-only negative control that must be convicted; exit 1 on \
             any violation.  --readers sets the scanner count.")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~docv:"N"
          ~doc:"With --fabric: shard count (writers = max 1 (shards/2)).")
  in
  let replay_seed =
    Arg.(
      value & opt (some int) None
      & info [ "replay-seed" ] ~docv:"SEED"
          ~doc:
            "Re-execute one fault-campaign schedule from its derived seed (as \
             printed by a --faults violation line) for the algorithm given \
             with --algo, showing its fault plan and full judgement.")
  in
  let history =
    Arg.(
      value & opt (some file) None
      & info [ "history" ] ~docv:"FILE"
          ~doc:
            "Re-judge a persisted history (History.dump format, e.g. the \
             .history file arc-crash keeps next to a failing mapping) through \
             the crash-aware checker, taking the pending write and fence from \
             its meta lines; exit 1 on violation.")
  in
  let shm =
    Arg.(
      value & opt (some file) None
      & info [ "shm" ] ~docv:"FILE"
          ~doc:
            "With --history: read the authoritative recovery fence and writer \
             epoch from this register mapping's superblock instead of the \
             dump's meta lines.")
  in
  Cmd.v
    (Cmd.info "arc-check"
       ~doc:
         "Explore schedules of a register algorithm and check atomicity \
          (Criterion 1) plus snapshot integrity; --faults runs the \
          fault-injection campaign instead; --fabric runs the cross-shard \
          snapshot campaign; --history re-judges a persisted cross-process \
          history.")
    Term.(
      const run $ faults $ fabric $ shards $ replay_seed $ history $ shm $ algo
      $ seeds $ strategy $ readers $ size $ steps $ verbose $ metrics)

let () = exit (Cmd.eval cmd)

(** Packing of the writer-election word [term ∥ vote].

    Same single-word discipline as {!Packed} (ARC's [current]): two
    fields in one native [int] so one seq-cst CAS arbitrates both.
    The {e term} (election round, monotone) lives in the high bits and
    the {e vote} (winning candidate of that term, or none) in the low
    bits, so packed words compare monotonically by term and a CAS from
    an observed word atomically claims term+1 for exactly one
    candidate — the whole election protocol of
    {!Arc_resilience.Election} is that one instruction.

    Field widths: the vote keeps 31 bits (candidate ids up to
    [2^31 - 2]; the field stores candidate + 1 so "no vote" is
    representable as 0) and the term gets the remaining
    [Sys.int_size - 31] = 32 bits — enough for one election per
    nanosecond for over a century. *)

val vote_bits : int
(** Width of the vote field (31). *)

val term_bits : int
(** Width of the term field ([Sys.int_size - vote_bits] = 32). *)

val max_term : int
(** Largest representable term, [2^32 - 1]. *)

val max_candidate : int
(** Largest representable candidate id, [2^31 - 2] (the vote field
    stores candidate + 1, reserving 0 for "no vote"). *)

val none : int
(** The fresh word: term 0, no vote — what a just-created mapping's
    election cell holds. *)

val make : term:int -> vote:int option -> int
(** [make ~term ~vote] packs the two fields.
    @raise Invalid_argument if either field is out of range. *)

val term : int -> int
(** [term w] extracts the election round. *)

val vote : int -> int option
(** [vote w] extracts the winning candidate of round [term w], or
    [None] if the round has no vote (only the fresh word, in this
    repository's protocol — every CAS installs a vote). *)

val succ_term : int -> candidate:int -> int
(** [succ_term w ~candidate] is the word a candidate CASes in to claim
    the next term: [make ~term:(term w + 1) ~vote:(Some candidate)].
    @raise Invalid_argument at [term w = max_term] — saturating with a
    diagnostic beats a silent wrap of the term into nowhere (the field
    is the word's top bits, so a wrap would reset the term to 0 and
    un-order every comparison). *)

val pp : Format.formatter -> int -> unit
(** Prints as [⟨term=t, vote=c⟩] for debugging and test failures. *)

val equal : int -> int -> bool
val to_string : int -> string

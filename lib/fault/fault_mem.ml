module Sched = Arc_vsched.Sched

type stats = {
  crashes : (int * int) list;  (** (fiber, access index at crash) *)
  tears : (int * int) list;  (** (fiber, words completed before the tear) *)
  stalls : int;
  drops : int;
  cas_lies : int;
}

let zero_stats = { crashes = []; tears = []; stalls = 0; drops = 0; cas_lies = 0 }

module Make (M : Arc_mem.Mem_intf.S) = struct
  let name = "fault(" ^ M.name ^ ")"

  (* Per-fiber access counters, one row per class plus the total. *)
  type counters = {
    mutable total : int;
    mutable loads : int;
    mutable stores : int;
    mutable rmws : int;
    mutable bulks : int;
  }

  type injector = {
    mutable pending : Fault_plan.event list;
    counters : (int, counters) Hashtbl.t;
    mutable stats : stats;
  }

  (* One injector per instantiation; runs are single-domain and
     sequential (install / run / drain), matching how Sim_mem treats
     its own global knobs. *)
  let inj = { pending = []; counters = Hashtbl.create 16; stats = zero_stats }

  (* Fault identity for code running OUTSIDE the virtual scheduler: a
     real OS process has no vsched fiber, so without this every access
     it makes is invisible to the injector.  A harness that needs to
     fault real-process code (the crash campaign's split-vote negative
     control) declares an ambient fiber id; plans address it like any
     fiber.  Scheduler-delivered actions ([Stall]) must not appear in
     ambient plans — there is no scheduler to sleep on. *)
  let ambient = ref None
  let set_ambient_fiber f = ambient := f

  let install plan =
    inj.pending <- Fault_plan.events plan;
    Hashtbl.reset inj.counters;
    inj.stats <- zero_stats

  let drain () =
    let s = inj.stats in
    inj.pending <- [];
    Hashtbl.reset inj.counters;
    inj.stats <- zero_stats;
    s

  let counters_for fiber =
    match Hashtbl.find_opt inj.counters fiber with
    | Some c -> c
    | None ->
      let c = { total = 0; loads = 0; stores = 0; rmws = 0; bulks = 0 } in
      Hashtbl.add inj.counters fiber c;
      c

  let class_count c (cls : Fault_plan.op_class) =
    match cls with
    | `Load -> c.loads
    | `Store -> c.stores
    | `Rmw -> c.rmws
    | `Bulk -> c.bulks

  let matches fiber c (cls : Fault_plan.op_class) (p : Fault_plan.point) =
    p.Fault_plan.fiber = fiber
    &&
    match p.Fault_plan.kind with
    | `Any -> p.Fault_plan.nth = c.total
    | #Fault_plan.op_class as k -> k = cls && p.Fault_plan.nth = class_count c k

  let crash_now fiber access =
    inj.stats <- { inj.stats with crashes = (fiber, access) :: inj.stats.crashes };
    raise Fault_plan.Crashed

  (* Classify-and-consult: count this access for the calling fiber,
     fire the first matching pending event, and tell the operation how
     to proceed.  Crash raises out of here; Stall sleeps, then lets
     the operation proceed (the access happens after the stall). *)
  let before (cls : Fault_plan.op_class) :
      [ `Proceed | `Skip | `Tear of int * bool | `Lie ] =
    match
      (match Sched.current_fiber () with None -> !ambient | f -> f)
    with
    | None -> `Proceed
    | Some fiber ->
      let c = counters_for fiber in
      c.total <- c.total + 1;
      (match cls with
      | `Load -> c.loads <- c.loads + 1
      | `Store -> c.stores <- c.stores + 1
      | `Rmw -> c.rmws <- c.rmws + 1
      | `Bulk -> c.bulks <- c.bulks + 1);
      let rec fire = function
        | [] -> `Proceed
        | (e : Fault_plan.event) :: _ when matches fiber c cls e.point ->
          inj.pending <- List.filter (fun e' -> e' != e) inj.pending;
          (match e.action with
          | Fault_plan.Crash -> crash_now fiber c.total
          | Fault_plan.Stall d ->
            inj.stats <- { inj.stats with stalls = inj.stats.stalls + 1 };
            Sched.sleep d;
            `Proceed
          | Fault_plan.Drop ->
            inj.stats <- { inj.stats with drops = inj.stats.drops + 1 };
            `Skip
          | Fault_plan.Tear { at_word; silent } ->
            if cls = `Bulk then `Tear (at_word, silent)
            else `Proceed (* tear points are `Bulk-typed by construction *)
          | Fault_plan.Cas_lie ->
            if cls = `Rmw then `Lie
            else `Proceed (* cas-lie points are `Rmw-typed by construction *))
        | _ :: rest -> fire rest
      in
      fire inj.pending

  (* {1 Synchronization variables} *)

  type atomic = M.atomic

  let atomic = M.atomic
  let atomic_contended = M.atomic_contended
  let atomic_contended_pair = M.atomic_contended_pair

  let load a =
    ignore (before `Load);
    M.load a

  let store a v = match before `Store with `Skip -> () | _ -> M.store a v

  let exchange a v =
    ignore (before `Rmw);
    M.exchange a v

  let add_and_fetch a k =
    ignore (before `Rmw);
    M.add_and_fetch a k

  let fetch_and_add a k =
    ignore (before `Rmw);
    M.fetch_and_add a k

  let incr a = match before `Rmw with `Skip -> () | _ -> M.incr a

  (* Only [compare_and_set] honours `Lie — it is the one rmw whose
     result is a won/lost verdict a protocol can be deceived about.
     Other rmws receiving `Lie proceed normally (the event is spent). *)
  let compare_and_set a old v =
    match before `Rmw with
    | `Lie ->
      inj.stats <- { inj.stats with cas_lies = inj.stats.cas_lies + 1 };
      true
    | _ -> M.compare_and_set a old v

  let fetch_and_or a mask =
    ignore (before `Rmw);
    M.fetch_and_or a mask

  let fetch_and_and a mask =
    ignore (before `Rmw);
    M.fetch_and_and a mask

  (* {1 Buffers} *)

  type buffer = M.buffer

  let alloc = M.alloc
  let capacity = M.capacity

  let record_tear fiber words =
    inj.stats <- { inj.stats with tears = (fiber, words) :: inj.stats.tears }

  let torn_copy ~len ~at_word ~silent copy =
    let fiber = Option.value ~default:(-1) (Sched.current_fiber ()) in
    let words = min at_word len in
    copy words;
    record_tear fiber words;
    if not silent then crash_now fiber (counters_for fiber).total

  let write_words buf ~src ~len =
    match before `Bulk with
    | `Proceed | `Lie -> M.write_words buf ~src ~len
    | `Skip -> ()
    | `Tear (at_word, silent) ->
      torn_copy ~len ~at_word ~silent (fun words -> M.write_words buf ~src ~len:words)

  let read_word buf i =
    ignore (before `Load);
    M.read_word buf i

  let read_words buf ~dst ~len =
    match before `Bulk with
    | `Proceed | `Lie -> M.read_words buf ~dst ~len
    | `Skip -> ()
    | `Tear (at_word, silent) ->
      torn_copy ~len ~at_word ~silent (fun words -> M.read_words buf ~dst ~len:words)

  let blit src dst ~len =
    match before `Bulk with
    | `Proceed | `Lie -> M.blit src dst ~len
    | `Skip -> ()
    | `Tear (at_word, silent) ->
      torn_copy ~len ~at_word ~silent (fun words -> M.blit src dst ~len:words)

  let cede = M.cede
end

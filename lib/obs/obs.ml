(* Wait-free telemetry cells and metric exposition (ISSUE 5).

   The observability layer's contract is the same as the register's:
   recording must never block, never retry, and — on the read fast
   path — never execute an RMW instruction.  The design that delivers
   it is the one the paper uses for presence accounting: give every
   domain its own word.

   A {!Cell} is a single-writer counter: a plain [mutable int] record
   field, allocated cache-line-isolated through the same spacer-boxing
   machinery as the substrate's hot synchronization words
   ({!Arc_mem.Isolate}, extracted from PR 1's [atomic_contended]).  The owner increments it with
   a plain load + store — one or two cycles, no fence, no RMW — and
   any other domain may read it concurrently.  A racy read of a
   word-sized field cannot tear in OCaml's memory model (it returns
   some previously written value), so observers see a possibly-stale
   but never-corrupt count; joining the owner (or any other
   happens-before edge) makes the value exact.  This is deliberately
   NOT an [Atomic]: a seq-cst store carries a full fence on x86, which
   is most of an RMW's cost — exactly the tax the §3.3 fast path
   exists to avoid.

   Cells live on the host heap, outside the register's memory
   substrate [M], for two reasons: counting must not add scheduling
   points under the virtual scheduler (enabling telemetry must not
   change any schedule, and therefore no checker-visible history), and
   it must not add operations the {!Arc_mem.Counting} instance would
   charge to the algorithm.  The vsched counter test in
   [test/test_obs.ml] verifies both. *)

module Cell = struct
  type t = { mutable v : int }

  let create () = Arc_mem.Isolate.alloc (fun () -> { v = 0 })

  (* Owner-only: plain read-modify-write of a private word.  Not
     atomic, by design — see the module comment. *)
  let incr c = c.v <- c.v + 1
  let add c n = c.v <- c.v + n
  let get c = c.v
  let reset c = c.v <- 0
end

module Group = struct
  type t = { name : string; help : string; cells : Cell.t array }

  let create ~name ~help n =
    if n < 1 then
      invalid_arg (Printf.sprintf "Obs.Group.create: %d cells (need >= 1)" n);
    { name; help; cells = Array.init n (fun _ -> Cell.create ()) }

  let cell t i = t.cells.(i)
  let domains t = Array.length t.cells
  let name t = t.name
  let help t = t.help
  let value t = Array.fold_left (fun acc c -> acc + Cell.get c) 0 t.cells
  let per_domain t = Array.map Cell.get t.cells
end

(* {1 Read outcomes}

   The per-domain replacement for {!Arc_util.Stats.Outcomes} wherever
   a counter is read while its owner is still running: each class is
   its own single-writer cell, so a supervisor or live-summary thread
   can snapshot a session's outcomes mid-run with no possibility of a
   torn or half-merged read.  [Stats.Outcomes] remains the right type
   for merge-after-join aggregation; [snapshot] bridges into it. *)

module Outcomes = struct
  type t = {
    ok : Cell.t;
    stale : Cell.t;
    exhausted : Cell.t;
    errors : Cell.t;
    retries : Cell.t;
  }

  let create () =
    {
      ok = Cell.create ();
      stale = Cell.create ();
      exhausted = Cell.create ();
      errors = Cell.create ();
      retries = Cell.create ();
    }

  let ok t = Cell.incr t.ok
  let stale t = Cell.incr t.stale
  let exhausted t = Cell.incr t.exhausted
  let error t = Cell.incr t.errors
  let retry t = Cell.incr t.retries
  let ok_count t = Cell.get t.ok
  let stale_count t = Cell.get t.stale
  let exhausted_count t = Cell.get t.exhausted
  let error_count t = Cell.get t.errors
  let retry_count t = Cell.get t.retries
  let total t = ok_count t + stale_count t + exhausted_count t
  let degraded t = stale_count t + exhausted_count t

  let degraded_rate t =
    let n = total t in
    if n = 0 then 0. else float_of_int (degraded t) /. float_of_int n

  (* A fresh merge-safe copy.  Each field is read once; concurrent
     increments may land between field reads, so the copy is a
     point-in-time view in which every count is individually valid and
     monotone across successive snapshots — not a linearized cut, but
     never torn or half-merged. *)
  let snapshot t =
    Arc_util.Stats.Outcomes.of_counts ~ok:(ok_count t)
      ~stale:(stale_count t) ~exhausted:(exhausted_count t)
      ~errors:(error_count t) ~retries:(retry_count t)

  let pp ppf t =
    Format.fprintf ppf
      "@[<h>ok=%d, stale=%d, exhausted=%d (degraded %.2f%%), errors=%d, \
       retries=%d@]"
      (ok_count t) (stale_count t) (exhausted_count t)
      (100. *. degraded_rate t)
      (error_count t) (retry_count t)
end

(* {1 Snapshot outcomes}

   Counter cells for the fabric's cross-shard snapshot (ISSUE 6): each
   scanner owns one cell per outcome class, same single-writer
   discipline as {!Outcomes}.  [retries] counts failed probe passes —
   the quantity the wait-freedom bound (at most shards + 1 failed
   passes before a helping deposit must exist) caps, so a soak that
   watches it can falsify the bound. *)

module Scan = struct
  type t = {
    direct : Group.t;  (* clean double-collect snapshots *)
    borrowed : Group.t;  (* snapshots served from a helping deposit *)
    retries : Group.t;  (* failed probe passes (per-shard re-collects) *)
  }

  let create ~scanners =
    {
      direct =
        Group.create ~name:"fabric_snapshots_direct_total"
          ~help:"Snapshots certified by a clean probe pass" scanners;
      borrowed =
        Group.create ~name:"fabric_snapshots_borrowed_total"
          ~help:"Snapshots served from a writer's helping deposit" scanners;
      retries =
        Group.create ~name:"fabric_snapshot_retries_total"
          ~help:"Probe passes that failed and forced a re-collect" scanners;
    }

  let direct t i = Group.cell t.direct i
  let borrowed t i = Group.cell t.borrowed i
  let retries t i = Group.cell t.retries i
  let direct_count t = Group.value t.direct
  let borrowed_count t = Group.value t.borrowed
  let retry_count t = Group.value t.retries
end

(* {1 Metrics and exposition} *)

type kind = Counter | Gauge

type metric = {
  mname : string;
  mhelp : string;
  mkind : kind;
  labels : (string * string) list;
  value : float;
}

let metric ?(labels = []) ?(help = "") kind name value =
  { mname = name; mhelp = help; mkind = kind; labels; value }

let counter ?labels ?help name v =
  metric ?labels ?help Counter name (float_of_int v)

let gauge ?labels ?help name v = metric ?labels ?help Gauge name v

let kind_name = function Counter -> "counter" | Gauge -> "gauge"

(* Prometheus text exposition format (version 0.0.4): HELP/TYPE once
   per family, one sample line per labelled metric.  Metrics are
   emitted in first-appearance order with same-name samples grouped,
   as the format requires. *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let escape_help v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let pp_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let sample_line m =
  let labels =
    if m.labels = [] then ""
    else
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             m.labels)
      ^ "}"
  in
  Printf.sprintf "%s%s %s" m.mname labels (pp_value m.value)

let prometheus metrics =
  let b = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  let families =
    List.filter
      (fun m ->
        if Hashtbl.mem seen m.mname then false
        else begin
          Hashtbl.add seen m.mname ();
          true
        end)
      metrics
  in
  List.iter
    (fun fam ->
      if fam.mhelp <> "" then
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" fam.mname (escape_help fam.mhelp));
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" fam.mname (kind_name fam.mkind));
      List.iter
        (fun m ->
          if m.mname = fam.mname then begin
            Buffer.add_string b (sample_line m);
            Buffer.add_char b '\n'
          end)
        metrics)
    families;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json metrics =
  let one m =
    let labels =
      if m.labels = [] then ""
      else
        Printf.sprintf ", \"labels\": {%s}"
          (String.concat ", "
             (List.map
                (fun (k, v) ->
                  Printf.sprintf "%S: \"%s\"" k (json_escape v))
                m.labels))
    in
    Printf.sprintf "    {\"name\": %S, \"kind\": %S%s, \"value\": %s}" m.mname
      (kind_name m.mkind) labels (pp_value m.value)
  in
  Printf.sprintf "[\n%s\n  ]" (String.concat ",\n" (List.map one metrics))

(* {1 Admission accounting (ISSUE 8)}

   The reader admission gate's event counters.  Unlike {!Cell}s these
   are [Atomic.t]: admission events are {e multi}-writer by nature
   (any arriving thread admits, any departing thread departs, a
   sweeper evicts) and they sit on the connection-churn path, not the
   read fast path — a fenced RMW per arrival is noise next to the
   admission scan itself.  The family carries the canonical metric
   names every binary exposes: arc_admission_{admitted,backpressured,
   departed,evicted}_total. *)

module Admission = struct
  type t = {
    admitted : int Atomic.t;
    backpressured : int Atomic.t;
    departed : int Atomic.t;
    evicted : int Atomic.t;
  }

  let create () =
    {
      admitted = Atomic.make 0;
      backpressured = Atomic.make 0;
      departed = Atomic.make 0;
      evicted = Atomic.make 0;
    }

  let admitted t = Atomic.fetch_and_add t.admitted 1 |> ignore
  let backpressured t = Atomic.fetch_and_add t.backpressured 1 |> ignore
  let departed t = Atomic.fetch_and_add t.departed 1 |> ignore
  let evicted t = Atomic.fetch_and_add t.evicted 1 |> ignore
  let admitted_count t = Atomic.get t.admitted
  let backpressured_count t = Atomic.get t.backpressured
  let departed_count t = Atomic.get t.departed
  let evicted_count t = Atomic.get t.evicted

  let metrics ?labels t =
    [
      counter ?labels "arc_admission_admitted_total"
        ~help:"Reader admissions granted by the gate"
        (admitted_count t);
      counter ?labels "arc_admission_backpressured_total"
        ~help:"Admission attempts refused with a typed backpressure verdict"
        (backpressured_count t);
      counter ?labels "arc_admission_departed_total"
        ~help:"Tickets released by an explicit depart"
        (departed_count t);
      counter ?labels "arc_admission_evicted_total"
        ~help:"Expired tickets reclaimed by the lease sweep"
        (evicted_count t);
    ]
end

(* ISSUE 10: the R2' validated plain-load read and write coalescing.

   Real-memory tests pin down the single-threaded semantics and the
   telemetry accounting; the virtual-scheduler tests drive the
   adversarial interleavings — a writer mid-publish during the plain
   scan must produce the one bounded fallback (never a torn result),
   and the unvalidated negative control must be convicted as torn by
   the stamped-payload validation under the same schedules. *)

module A = Arc_core.Arc.Make (Arc_mem.Real_mem)
module Ad = Arc_core.Arc_dynamic.Make (Arc_mem.Real_mem)
module P = Arc_workload.Payload.Make (Arc_mem.Real_mem)
module As = Arc_core.Arc.Make (Arc_vsched.Sim_mem)
module Ps = Arc_workload.Payload.Make (Arc_vsched.Sim_mem)
module Sq = Arc_baselines.Seqlock_reg.Make (Arc_vsched.Sim_mem)
module Checker = Arc_trace.Checker
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy

let check = Alcotest.(check int)

let stamped ~seq ~len =
  let a = Array.make len 0 in
  P.stamp a ~seq ~len;
  a

(* --- R2' semantics on real memory ----------------------------------- *)

let test_plain_reads_values () =
  let n = 16 in
  let reg = A.create ~readers:2 ~capacity:n ~init:(stamped ~seq:0 ~len:n) in
  A.set_telemetry reg (Some (A.make_telemetry ~readers:2 ()));
  let rd = A.reader reg 0 in
  let read_seq () =
    match A.read_plain rd ~f:(fun buf len -> P.validate buf ~len) with
    | Ok s -> s
    | Error e -> Alcotest.failf "validated plain read returned torn data: %s" e
  in
  check "initial value" 0 (read_seq ());
  for k = 1 to 8 do
    A.write reg ~src:(stamped ~seq:k ~len:n) ~len:n;
    check (Printf.sprintf "write %d visible" k) k (read_seq ())
  done;
  let tel = Option.get (A.telemetry reg) in
  (* Single-threaded: every plain read validated, no fallback, and the
     plain path never touched the subscription machinery. *)
  check "plain reads counted" 9 (A.plain_reads tel);
  check "no fallbacks" 0 (A.plain_fallbacks tel);
  check "no classic reads" 0 (A.fast_reads tel + A.slow_reads tel)

let test_plain_hot_hit_after_subscribe () =
  let n = 8 in
  let reg = A.create ~readers:1 ~capacity:n ~init:(stamped ~seq:0 ~len:n) in
  let rd = A.reader reg 0 in
  A.write reg ~src:(stamped ~seq:1 ~len:n) ~len:n;
  (* Classic read subscribes and caches the packed word; the plain
     reads that follow take the pinned hot hit and must return exactly
     the pinned value. *)
  ignore (A.read_with rd ~f:(fun _ _ -> ()));
  for _ = 1 to 3 do
    match A.read_plain rd ~f:(fun buf len -> P.validate buf ~len) with
    | Ok s -> check "hot hit returns pinned value" 1 s
    | Error e -> Alcotest.failf "hot-hit plain read torn: %s" e
  done;
  (* A new write moves [current]: the next plain read leaves the hot
     path, validates against the new slot, and sees the new value
     without subscribing. *)
  A.write reg ~src:(stamped ~seq:2 ~len:n) ~len:n;
  (match A.read_plain rd ~f:(fun buf len -> P.validate buf ~len) with
  | Ok s -> check "validated path sees the new write" 2 s
  | Error e -> Alcotest.failf "validated plain read torn: %s" e);
  (* The classic path still works and resubscribes past it. *)
  ignore (A.read_with rd ~f:(fun _ _ -> ()))

(* --- write coalescing ------------------------------------------------ *)

let test_coalescing_property () =
  let n = 8 in
  let max_pending = 4 and max_staleness = 6 in
  let reg = A.create ~readers:1 ~capacity:n ~init:(stamped ~seq:0 ~len:n) in
  let rd = A.reader reg 0 in
  let published = ref [] and last_pub = ref 0 in
  let observe () =
    (* Single-threaded: at most one publish can have happened since
       the previous observation, so polling after every operation
       records the complete publish sequence. *)
    match A.read_plain rd ~f:(fun buf len -> P.validate buf ~len) with
    | Ok s -> if s <> !last_pub then (published := s :: !published; last_pub := s)
    | Error e -> Alcotest.failf "torn read while observing publishes: %s" e
  in
  let enq = ref 0 in
  let src = Array.make n 0 in
  for k = 1 to 25 do
    incr enq;
    P.stamp src ~seq:!enq ~len:n;
    A.write_coalesced reg ~max_pending ~max_staleness ~src ~len:n;
    observe ();
    if k mod 7 = 0 then begin
      (* A direct write must absorb (supersede) the staged batch, not
         lose it or publish stale staged data after fresher data. *)
      incr enq;
      P.stamp src ~seq:!enq ~len:n;
      A.write reg ~src ~len:n;
      observe ()
    end
  done;
  A.flush_coalesced reg;
  observe ();
  check "nothing left pending after flush" 0 (A.pending_writes reg);
  (match
     Checker.check_coalesced ~enqueued:!enq ~bound:max_staleness
       (List.rev !published)
   with
  | Ok publishes -> Alcotest.(check bool) "published at least once" true (publishes > 0)
  | Error v ->
    Alcotest.failf "coalescing contract violated: %a" Checker.pp_coalesce_violation v);
  Alcotest.(check bool) "batches formed" true (A.coalesced_batches reg > 0);
  Alcotest.(check bool) "absorbed writes counted" true (A.coalesced_absorbed reg > 0);
  Alcotest.(check bool)
    (Printf.sprintf "max batch %d within max_pending %d" (A.max_coalesced_batch reg)
       max_pending)
    true
    (A.max_coalesced_batch reg <= max_pending)

let test_coalescing_lone_flush_and_validation () =
  let n = 4 in
  let reg = A.create ~readers:1 ~capacity:n ~init:(stamped ~seq:0 ~len:n) in
  let rd = A.reader reg 0 in
  let src = stamped ~seq:1 ~len:n in
  A.write_coalesced reg ~max_pending:8 ~max_staleness:8 ~src ~len:n;
  check "staged, not yet published" 1 (A.pending_writes reg);
  (match A.read_plain rd ~f:(fun buf len -> P.validate buf ~len) with
  | Ok s -> check "reader still sees the pre-batch value" 0 s
  | Error e -> Alcotest.fail e);
  A.flush_coalesced reg;
  (match A.read_plain rd ~f:(fun buf len -> P.validate buf ~len) with
  | Ok s -> check "flush published the batch" 1 s
  | Error e -> Alcotest.fail e);
  A.flush_coalesced reg (* idempotent on empty staging *);
  check "still published value" 1 (A.read_with rd ~f:(fun buf _ -> P.decode_seq buf));
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () ->
      A.write_coalesced reg ~max_pending:0 ~max_staleness:4 ~src ~len:n);
  raises (fun () ->
      (* staleness bound must cover the batch size *)
      A.write_coalesced reg ~max_pending:4 ~max_staleness:3 ~src ~len:n);
  raises (fun () ->
      A.write_coalesced reg ~max_pending:2 ~max_staleness:4 ~src ~len:(n + 1))

let test_coalescing_dynamic_variant () =
  let n = 8 in
  let module Pd = P in
  let reg = Ad.create ~readers:1 ~capacity:n ~init:(stamped ~seq:0 ~len:n) in
  let rd = Ad.reader reg 0 in
  let src = Array.make n 0 in
  for k = 1 to 10 do
    Pd.stamp src ~seq:k ~len:n;
    Ad.write_coalesced reg ~max_pending:3 ~max_staleness:5 ~src ~len:n
  done;
  Ad.flush_coalesced reg;
  (match Ad.read_plain rd ~f:(fun buf len -> Pd.validate buf ~len) with
  | Ok s -> check "dynamic variant: final write published" 10 s
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "dynamic variant batches" true (Ad.coalesced_batches reg >= 3);
  Alcotest.(check bool) "dynamic max batch bounded" true
    (Ad.max_coalesced_batch reg <= 3)

(* --- vsched: the stamp-mismatch fallback and the negative control ---- *)

let seeds = 40
let sim_words = 8
let sim_writes = 12
let sim_reads = 20

(* Runs one adversarial schedule; [read] performs one plain-path read
   on the handle and returns the validation result of whatever the
   register returned.  Returns (fallbacks, plain_reads, convictions):
   a conviction is a {e returned} torn value — f itself may observe
   torn words mid-scan, that is the seqlock discipline, but a torn
   result must never escape a validated read. *)
let run_plain_schedule ?(strategy = fun seed -> Strategy.random ~seed) ~seed ~read ()
    =
  let init = Array.make sim_words 0 in
  P.stamp init ~seq:0 ~len:sim_words;
  let reg = As.create ~readers:2 ~capacity:sim_words ~init in
  As.set_telemetry reg (Some (As.make_telemetry ~readers:2 ()));
  let convictions = ref 0 in
  let writer () =
    let src = Array.make sim_words 0 in
    for k = 1 to sim_writes do
      P.stamp src ~seq:k ~len:sim_words;
      As.write reg ~src ~len:sim_words
    done
  in
  let reader i () =
    let rd = As.reader reg i in
    let last = ref (-1) in
    for _ = 1 to sim_reads do
      match read rd with
      | Ok s ->
        if s < !last then
          Alcotest.failf "seed %d: new-old inversion %d -> %d" seed !last s;
        last := s
      | Error _ -> incr convictions
    done
  in
  ignore (Sched.run ~strategy:(strategy seed) [| writer; reader 0; reader 1 |]);
  let tel = Option.get (As.telemetry reg) in
  (As.plain_fallbacks tel, As.plain_reads tel, !convictions)

let test_plain_fallback_under_schedules () =
  let total_fallbacks = ref 0 and total_plain = ref 0 in
  let strategies =
    [ (fun seed -> Strategy.random ~seed);
      (fun seed -> Strategy.random_burst ~seed ~max_burst:40);
      (fun seed ->
        Strategy.steal ~seed
          ~base:(Strategy.random ~seed:(seed + 1))
          ~probability:0.05 ~min_pause:30 ~max_pause:200) ]
  in
  List.iter
    (fun strategy ->
      for seed = 0 to seeds - 1 do
        let fallbacks, plain, convictions =
          run_plain_schedule ~strategy ~seed
            ~read:(fun rd ->
              As.read_plain rd ~f:(fun buf len -> Ps.validate buf ~len))
            ()
        in
        if convictions > 0 then
          Alcotest.failf "seed %d: validated plain read returned torn data" seed;
        total_fallbacks := !total_fallbacks + fallbacks;
        total_plain := !total_plain + plain
      done)
    strategies;
  (* The schedules must actually have driven both arms: validated
     plain successes and the writer-mid-publish stamp-mismatch
     fallback.  If either stays at zero the test lost its teeth. *)
  Alcotest.(check bool)
    (Printf.sprintf "stamp-mismatch fallbacks driven (%d)" !total_fallbacks)
    true (!total_fallbacks > 0);
  Alcotest.(check bool)
    (Printf.sprintf "validated plain reads driven (%d)" !total_plain)
    true (!total_plain > 0)

let test_unvalidated_plain_convicted () =
  (* Negative control: the same scan with validation removed must be
     convicted as torn by the stamped payload under some schedule —
     this is what proves the begin/end stamps are load-bearing. *)
  (* The tear needs a long writer stretch inside the reader's scan
     (finish the in-flight publish, then re-prepare the very slot
     being scanned): a stolen reader resting mid-scan while the writer
     churns is exactly that geometry — the validated read survives
     these same schedules above via its fallback. *)
  let burst seed =
    Strategy.steal ~seed
      ~base:(Strategy.random ~seed:(seed + 1))
      ~probability:0.05 ~min_pause:30 ~max_pause:200
  in
  let convicted = ref 0 in
  for seed = 0 to seeds - 1 do
    let _, _, convictions =
      run_plain_schedule ~strategy:burst ~seed
        ~read:(fun rd ->
          As.Debug.unvalidated_plain rd ~f:(fun buf len -> Ps.validate buf ~len))
        ()
    in
    convicted := !convicted + convictions
  done;
  Alcotest.(check bool)
    (Printf.sprintf "unvalidated plain load convicted as torn (%d)" !convicted)
    true (!convicted > 0)

(* --- seqlock torn-size regression (ISSUE 10 satellite) --------------- *)

let test_seqlock_torn_size_is_a_retry () =
  (* Plant an out-of-range size word, as a torn or corrupted store
     would leave it; the reader must treat it as failed validation
     (retry until a legitimate write repairs the register), never
     clamp it into a bogus success.  The pre-fix code returned a
     clamped length immediately, so retries stayed 0. *)
  let capacity = 8 in
  let reg = Sq.create ~readers:1 ~capacity ~init:(Array.make 4 7) in
  Sq.Debug.force_size reg (Sq.Debug.capacity reg + 3);
  let rd = Sq.reader reg 0 in
  let got = ref (-1) in
  let reader () = got := Sq.read_with rd ~f:(fun _ len -> len) in
  let repair () = Sq.write reg ~src:(Array.make 2 9) ~len:2 in
  ignore (Sched.run ~strategy:(Strategy.random ~seed:11) [| reader; repair |]);
  Alcotest.(check bool) "torn size counted as retries" true (Sq.retries rd >= 1);
  check "read completed with the repaired length" 2 !got

let suite =
  [
    Alcotest.test_case "plain read returns values" `Quick test_plain_reads_values;
    Alcotest.test_case "plain hot hit after subscribe" `Quick
      test_plain_hot_hit_after_subscribe;
    Alcotest.test_case "coalescing property" `Quick test_coalescing_property;
    Alcotest.test_case "coalescing flush + validation" `Quick
      test_coalescing_lone_flush_and_validation;
    Alcotest.test_case "coalescing (dynamic variant)" `Quick
      test_coalescing_dynamic_variant;
    Alcotest.test_case "fallback under schedules" `Quick
      test_plain_fallback_under_schedules;
    Alcotest.test_case "unvalidated control convicted" `Quick
      test_unvalidated_plain_convicted;
    Alcotest.test_case "seqlock torn size retries" `Quick
      test_seqlock_torn_size_is_a_retry;
  ]

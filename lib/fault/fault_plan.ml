exception Crashed

type op_class = [ `Load | `Store | `Rmw | `Bulk ]

type kind = [ `Any | op_class ]

type action =
  | Crash
  | Stall of int
  | Tear of { at_word : int; silent : bool }
  | Drop
  | Cas_lie

type point = { fiber : int; kind : kind; nth : int }

type event = { point : point; action : action }

type t = event list

let empty = []

let check_point ~who ~fiber ~nth =
  if fiber < 0 then invalid_arg (Printf.sprintf "%s: fiber %d negative" who fiber);
  if nth < 1 then invalid_arg (Printf.sprintf "%s: access index %d (need >= 1)" who nth)

let crash ~fiber ~at_access plan =
  check_point ~who:"Fault_plan.crash" ~fiber ~nth:at_access;
  { point = { fiber; kind = `Any; nth = at_access }; action = Crash } :: plan

let stall ~fiber ~at_access ~steps plan =
  check_point ~who:"Fault_plan.stall" ~fiber ~nth:at_access;
  if steps < 1 then
    invalid_arg (Printf.sprintf "Fault_plan.stall: steps = %d (need >= 1)" steps);
  { point = { fiber; kind = `Any; nth = at_access }; action = Stall steps } :: plan

let tear ~fiber ~at_copy ~at_word ~silent plan =
  check_point ~who:"Fault_plan.tear" ~fiber ~nth:at_copy;
  if at_word < 0 then
    invalid_arg (Printf.sprintf "Fault_plan.tear: word %d negative" at_word);
  { point = { fiber; kind = `Bulk; nth = at_copy }; action = Tear { at_word; silent } }
  :: plan

let drop ~fiber ~kind ~nth plan =
  check_point ~who:"Fault_plan.drop" ~fiber ~nth;
  { point = { fiber; kind = (kind :> kind); nth }; action = Drop } :: plan

let cas_lie ~fiber ~nth plan =
  check_point ~who:"Fault_plan.cas_lie" ~fiber ~nth;
  { point = { fiber; kind = `Rmw; nth }; action = Cas_lie } :: plan

let events = Fun.id
let size = List.length

let class_name = function
  | `Any -> "any"
  | `Load -> "load"
  | `Store -> "store"
  | `Rmw -> "rmw"
  | `Bulk -> "bulk"

let pp_action ppf = function
  | Crash -> Format.fprintf ppf "crash"
  | Stall d -> Format.fprintf ppf "stall(%d)" d
  | Tear { at_word; silent } ->
    Format.fprintf ppf "tear(word=%d%s)" at_word (if silent then ",silent" else "")
  | Drop -> Format.fprintf ppf "drop"
  | Cas_lie -> Format.fprintf ppf "cas-lie"

let pp ppf plan =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun { point = { fiber; kind; nth }; action } ->
      Format.fprintf ppf "fiber %d, %s access #%d: %a@," fiber (class_name kind) nth
        pp_action action)
    plan;
  Format.fprintf ppf "@]"

let to_string plan = Format.asprintf "%a" pp plan

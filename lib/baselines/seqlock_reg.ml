let algorithm = "seqlock"

module Make (M : Arc_mem.Mem_intf.S) = struct
  module Mem = M

  type t = {
    version : M.atomic;
    size : M.atomic;
    content : M.buffer;
    capacity : int;
    readers : int;
  }
  type reader = { reg : t; scratch : M.buffer; mutable retries : int }

  let algorithm = algorithm

  let caps =
    {
      Arc_core.Register_intf.wait_free = false;
      zero_copy = false (* reads validate a private scratch copy *);
      max_readers = (fun ~capacity_words:_ -> None);
      snapshot_read = false;
    }

  let create ~readers ~capacity ~init =
    if readers < 1 then invalid_arg "Seqlock_reg.create: need at least one reader";
    if capacity < 1 then invalid_arg "Seqlock_reg.create: capacity must be positive";
    if Array.length init > capacity then invalid_arg "Seqlock_reg.create: init too long";
    let reg =
      {
        (* Readers poll [version] around every copy while the writer
           bumps it twice per write: own line, away from the data. *)
        version = M.atomic_contended 0;
        size = M.atomic 0;
        content = M.alloc capacity;
        capacity;
        readers;
      }
    in
    M.write_words reg.content ~src:init ~len:(Array.length init);
    M.store reg.size (Array.length init);
    reg

  let reader reg i =
    if i < 0 || i >= reg.readers then
      invalid_arg "Seqlock_reg.reader: identity out of range";
    { reg; scratch = M.alloc reg.capacity; retries = 0 }
  let retries rd = rd.retries

  let read_with rd ~f =
    let reg = rd.reg in
    let rec attempt () =
      let v1 = M.load reg.version in
      if v1 land 1 = 1 then begin
        rd.retries <- rd.retries + 1;
        M.cede ();
        attempt ()
      end
      else begin
        let len = M.load reg.size in
        if len < 0 || len > reg.capacity then begin
          (* An out-of-range size word is torn evidence (a racing or
             corrupted store), not noise to clamp away: treating it as
             a failed validation keeps the baseline's tear accounting
             honest in checker comparisons. *)
          rd.retries <- rd.retries + 1;
          M.cede ();
          attempt ()
        end
        else begin
          M.blit reg.content rd.scratch ~len;
          let v2 = M.load reg.version in
          if v1 = v2 then (rd.scratch, len)
          else begin
            rd.retries <- rd.retries + 1;
            M.cede ();
            attempt ()
          end
        end
      end
    in
    let buffer, len = attempt () in
    f buffer len

  let read_into rd ~dst =
    read_with rd ~f:(fun buffer len ->
        if Array.length dst < len then
          invalid_arg "Seqlock_reg.read_into: dst too short";
        M.read_words buffer ~dst ~len;
        len)

  let write reg ~src ~len =
    if len < 0 || len > Array.length src then invalid_arg "Seqlock_reg.write: bad length";
    if len > M.capacity reg.content then
      invalid_arg "Seqlock_reg.write: exceeds capacity";
    M.store reg.version (M.load reg.version + 1) (* odd: write in progress *);
    M.write_words reg.content ~src ~len;
    M.store reg.size len;
    M.store reg.version (M.load reg.version + 1) (* even: stable *)

  module Debug = struct
    (* Test-only: plant a (possibly out-of-range) size word as a torn
       or corrupted store would leave it, without touching the
       version — the regression harness for the validation above. *)
    let force_size reg len = M.store reg.size len
    let capacity reg = reg.capacity
  end
end

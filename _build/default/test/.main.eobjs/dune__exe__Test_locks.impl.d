test/test_locks.ml: Alcotest Arc_baselines Arc_core Arc_mem Arc_vsched Arc_workload Array Option Printf

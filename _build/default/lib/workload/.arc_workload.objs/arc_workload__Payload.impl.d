lib/workload/payload.ml: Arc_mem Array Printf

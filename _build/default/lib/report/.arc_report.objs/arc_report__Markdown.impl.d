lib/report/markdown.ml: List Printf Series String Table

(** MESI-style cache-coherence model (directory flavour, M/S/I per
    agent and line) — the substrate behind experiment E9.

    The paper's performance argument is ultimately about coherence
    traffic (§1, §3.2): an RMW must hold its line exclusively, so
    every RMW by a different core bounces the synchronization line
    through invalidations, whereas a plain load of an unmodified line
    stays a local hit.  This model makes that measurable: each access
    by an agent updates the line's per-agent states, counts protocol
    messages, and returns a cost (in simulated steps) that the
    simulated-memory instance feeds to the scheduler.

    Simplifications, deliberate and documented: infinite capacity (no
    evictions — the registers' working sets are small), no E state
    (first read installs S), and atomic directory updates (the
    scheduler serializes accesses anyway).  None of these affect the
    *differences* between algorithms, which is what E9 reports. *)

type t

type stats = {
  reads : int;
  writes : int;  (** write-intent accesses (stores and RMWs) *)
  hits : int;
  fetches : int;  (** read misses serviced (GetS messages) *)
  rfos : int;  (** write misses / upgrades (GetX messages) *)
  invalidations : int;  (** remote copies invalidated by GetX *)
  writebacks : int;  (** M copies downgraded for another agent *)
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit

val create : agents:int -> t
(** [agents] caches sharing the directory; agent ids are
    [0, agents). *)

val agents : t -> int

val init_agent : t -> int
(** The designated agent for accesses made outside any scheduler
    fiber (setup code): the last id. *)

val read : t -> agent:int -> line:int -> int
(** Perform a read access; returns its cost in simulated steps. *)

val write : t -> agent:int -> line:int -> int
(** Perform a write-intent access (store or RMW); returns its cost. *)

val stats : t -> stats
val reset_stats : t -> unit

(** Cost constants (simulated steps). *)

val hit_cost : int
val fetch_cost : int
val rfo_cost : int

(* Quickstart: one writer domain publishes multi-word snapshots, two
   reader domains consume them wait-free through an ARC register.

     dune exec examples/quickstart.exe *)

module Arc = Arc_core.Arc.Make (Arc_mem.Real_mem)

let () =
  (* A register holding snapshots of up to 8 words, for 2 readers,
     initialized to [0; 0; ...]. *)
  (* The initial value obeys the same layout as every later snapshot:
     word i = version + i, version 0. *)
  let reg = Arc.create ~readers:2 ~capacity:8 ~init:(Array.init 8 Fun.id) in

  let writer () =
    let src = Array.make 8 0 in
    for seq = 1 to 1000 do
      (* Build the new snapshot: word 0 is a version, the rest is
         payload derived from it. *)
      Array.iteri (fun i _ -> src.(i) <- (seq * 10) + i) src;
      Arc.write reg ~src ~len:8
    done
  in

  let reader id () =
    let rd = Arc.reader reg id in
    let seen = ref (-1) in
    let distinct = ref 0 in
    let reads = ref 0 in
    (* Read until the final snapshot (version 10000) is observed. *)
    while !seen < 10_000 do
      incr reads;
      (* read_with runs the callback directly on the shared slot: no
         copy.  The snapshot is guaranteed consistent — all 8 words
         from the same write. *)
      Arc.read_with rd ~f:(fun buffer len ->
          let version = Arc_mem.Real_mem.read_word buffer 0 in
          let last = Arc_mem.Real_mem.read_word buffer (len - 1) in
          assert (last = version + len - 1);
          if version <> !seen then begin
            seen := version;
            incr distinct
          end)
    done;
    Printf.printf
      "reader %d: %d reads, %d distinct snapshots observed, final version %d\n" id
      !reads !distinct !seen
  in

  let domains =
    [ Domain.spawn writer; Domain.spawn (reader 0); Domain.spawn (reader 1) ]
  in
  List.iter Domain.join domains;
  print_endline "quickstart: done (all snapshots internally consistent)"

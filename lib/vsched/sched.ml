open Effect
open Effect.Deep

type _ Effect.t += Cede : int -> unit Effect.t
type _ Effect.t += Sleep : int -> unit Effect.t

type status =
  | Fresh of (unit -> unit)
  | Suspended of (unit, unit) continuation
  | Finished

type t = {
  status : status array;
  runnable : int array;  (* ids of runnable fibers, first [nrunnable] *)
  pos : int array;  (* fiber id -> index in [runnable], -1 if absent *)
  mutable nrunnable : int;
  (* Fibers postponed by a steal/starve decision: (id, wake_step). *)
  mutable postponed : (int * int) list;
  mutable steps : int;
  mutable running : int;  (* id of the fiber currently executing, -1 otherwise *)
  mutable live : int;  (* fibers not yet Finished *)
}

type outcome = { steps : int; completed : int; unfinished : int }

(* The scheduler of the enclosing run, per domain.  Fibers find it to
   answer self()/now(); cede() outside any run degrades to a no-op. *)
let current_key : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_key)

let cede ?(weight = 1) () =
  match current () with
  | None -> ()
  | Some t -> if t.running >= 0 then perform (Cede weight) else ()

let sleep d =
  match current () with
  | None -> ()
  | Some t -> if t.running >= 0 && d > 0 then perform (Sleep d) else ()

let current_fiber () =
  match current () with
  | Some t when t.running >= 0 -> Some t.running
  | _ -> None

let self () =
  match current_fiber () with
  | Some id -> id
  | None -> failwith "Sched.self: not inside a fiber"

let now () = match current () with Some t -> t.steps | None -> 0
let fiber_count () = match current () with Some t -> Array.length t.status | None -> 0

let add_runnable t id =
  t.pos.(id) <- t.nrunnable;
  t.runnable.(t.nrunnable) <- id;
  t.nrunnable <- t.nrunnable + 1

let remove_runnable t id =
  let i = t.pos.(id) in
  assert (i >= 0);
  let last = t.nrunnable - 1 in
  let moved = t.runnable.(last) in
  t.runnable.(i) <- moved;
  t.pos.(moved) <- i;
  t.nrunnable <- last;
  t.pos.(id) <- -1

let wake_due t =
  if t.postponed <> [] then begin
    let due, rest = List.partition (fun (_, until) -> until <= t.steps) t.postponed in
    t.postponed <- rest;
    List.iter
      (fun (id, _) ->
        match t.status.(id) with Finished -> () | _ -> add_runnable t id)
      due
  end

(* If everything runnable got postponed, fast-forward simulated time
   to the earliest wake-up rather than deadlocking. *)
let skip_to_next_wake t =
  match t.postponed with
  | [] -> ()
  | (_, u) :: rest ->
    let earliest = List.fold_left (fun acc (_, u) -> min acc u) u rest in
    if earliest > t.steps then t.steps <- earliest;
    wake_due t

(* Run one scheduling quantum of fiber [id]: resume it until its next
   Cede (which re-suspends it) or its completion. *)
let step_fiber t id =
  t.running <- id;
  (match t.status.(id) with
  | Finished -> ()
  | Suspended k ->
    t.status.(id) <- Finished (* will be overwritten by the handler on Cede *);
    continue k ()
  | Fresh f ->
    let handler =
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Cede weight ->
              Some
                (fun (k : (a, _) continuation) ->
                  t.steps <- t.steps + weight;
                  t.status.(id) <- Suspended k)
            | Sleep d ->
              Some
                (fun (k : (a, _) continuation) ->
                  t.steps <- t.steps + 1;
                  t.status.(id) <- Suspended k;
                  (* Unlike Cede, a sleeping fiber leaves the runnable
                     set entirely until its wake step — fault stalls
                     must not depend on the strategy's goodwill. *)
                  remove_runnable t id;
                  t.postponed <- (id, t.steps + d) :: t.postponed)
            | _ -> None);
      }
    in
    t.status.(id) <- Finished;
    match_with f () handler);
  t.running <- -1;
  let finished = match t.status.(id) with Finished -> true | _ -> false in
  if finished then begin
    if t.pos.(id) >= 0 then remove_runnable t id;
    t.live <- t.live - 1
  end

(* ... except that Finished is set optimistically before resuming: if
   the fiber ceded, the handler replaced it with Suspended; if it
   truly returned, it stays Finished.  [live] bookkeeping relies on
   this: we only decrement when the status survived as Finished. *)

let run ?(max_steps = max_int) ~strategy fibers =
  let n = Array.length fibers in
  if n = 0 then { steps = 0; completed = 0; unfinished = 0 }
  else begin
    let t =
      {
        status = Array.map (fun f -> Fresh f) fibers;
        runnable = Array.make n 0;
        pos = Array.make n (-1);
        nrunnable = 0;
        postponed = [];
        steps = 0;
        running = -1;
        live = n;
      }
    in
    for id = 0 to n - 1 do
      add_runnable t id
    done;
    let slot = Domain.DLS.get current_key in
    (match !slot with
    | Some _ -> failwith "Sched.run: already inside a scheduler on this domain"
    | None -> ());
    slot := Some t;
    let restore () = slot := None in
    (try
       let runnable () = (t.runnable, t.nrunnable) in
       while t.live > 0 && t.steps < max_steps do
         wake_due t;
         if t.nrunnable = 0 then skip_to_next_wake t
         else begin
           match Strategy.decide strategy ~step:t.steps ~runnable with
           | Strategy.Run id ->
             t.steps <- t.steps + 1;
             step_fiber t id
           | Strategy.Postpone (id, until) ->
             remove_runnable t id;
             t.postponed <- (id, until) :: t.postponed;
             (* Postponing consumes a step too, so a strategy that
                postpones everything still makes time advance. *)
             t.steps <- t.steps + 1
         end
       done
     with e ->
       restore ();
       raise e);
    restore ();
    let completed =
      Array.fold_left
        (fun acc s -> match s with Finished -> acc + 1 | _ -> acc)
        0 t.status
    in
    { steps = t.steps; completed; unfinished = n - completed }
  end

(* The MESI cache model, the coherence-modelled memory instance, and
   the E9 claims as assertions. *)

module Cache = Arc_coherence.Cache
module Cc = Arc_coherence.Cc_mem
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module Coherence_exp = Arc_harness.Coherence_exp

let check = Alcotest.(check int)

let stat f c = f (Cache.stats c)

let test_read_transitions () =
  let c = Cache.create ~agents:3 in
  (* cold read: fetch *)
  let cost = Cache.read c ~agent:0 ~line:1 in
  check "cold read costs a fetch" Cache.fetch_cost cost;
  check "one fetch" 1 (stat (fun s -> s.Cache.fetches) c);
  (* re-read: hit *)
  check "re-read hits" Cache.hit_cost (Cache.read c ~agent:0 ~line:1);
  (* another agent reading: fetch, no invalidation *)
  check "second agent fetches" Cache.fetch_cost (Cache.read c ~agent:1 ~line:1);
  check "no invalidations for shared readers" 0
    (stat (fun s -> s.Cache.invalidations) c)

let test_write_invalidates_sharers () =
  let c = Cache.create ~agents:4 in
  ignore (Cache.read c ~agent:0 ~line:7);
  ignore (Cache.read c ~agent:1 ~line:7);
  ignore (Cache.read c ~agent:2 ~line:7);
  let cost = Cache.write c ~agent:3 ~line:7 in
  check "write upgrade costs an RFO" Cache.rfo_cost cost;
  check "three sharers invalidated" 3 (stat (fun s -> s.Cache.invalidations) c);
  (* writer now hits *)
  check "subsequent write hits" Cache.hit_cost (Cache.write c ~agent:3 ~line:7);
  (* a sharer must re-fetch, downgrading the modified copy *)
  check "sharer re-fetch" Cache.fetch_cost (Cache.read c ~agent:0 ~line:7);
  check "one writeback" 1 (stat (fun s -> s.Cache.writebacks) c)

let test_rmw_ping_pong () =
  (* Two agents alternating RMWs on one line: every access is an RFO
     invalidating the other — the §3.2 split-line story. *)
  let c = Cache.create ~agents:2 in
  ignore (Cache.write c ~agent:0 ~line:3);
  Cache.reset_stats c;
  for _ = 1 to 10 do
    ignore (Cache.write c ~agent:1 ~line:3);
    ignore (Cache.write c ~agent:0 ~line:3)
  done;
  check "20 RFOs" 20 (stat (fun s -> s.Cache.rfos) c);
  check "20 invalidations" 20 (stat (fun s -> s.Cache.invalidations) c);
  check "zero hits" 0 (stat (fun s -> s.Cache.hits) c)

let test_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Cache.create ~agents:0);
  let c = Cache.create ~agents:2 in
  raises (fun () -> Cache.read c ~agent:2 ~line:0);
  raises (fun () -> Cache.write c ~agent:(-1) ~line:0)

let test_cc_mem_without_cache () =
  Cc.uninstall ();
  let a = Cc.atomic 5 in
  check "degrades to plain" 5 (Cc.load a);
  Cc.store a 6;
  check "store works" 6 (Cc.load a)

let test_cc_mem_charges_costs () =
  let cache = Cache.create ~agents:3 in
  Cc.install cache;
  let a = Cc.atomic 0 in
  let steps = ref 0 in
  let fiber () =
    ignore (Cc.load a) (* fiber 0: fetch *);
    ignore (Cc.load a) (* hit *);
    Cc.incr a (* RFO upgrade *)
  in
  let outcome = Sched.run ~strategy:(Strategy.round_robin ()) [| fiber |] in
  steps := outcome.Sched.steps;
  Cc.uninstall ();
  (* fetch + hit + rfo, plus one scheduler decision per quantum:
     the initial dispatch and one resumption after each of the three
     cedes. *)
  check "weighted steps"
    (Cache.fetch_cost + Cache.hit_cost + Cache.rfo_cost + 4)
    !steps

let test_buffer_lines () =
  let cache = Cache.create ~agents:2 in
  Cc.install cache;
  let b = Cc.alloc 16 (* two lines *) in
  let fiber () = Cc.write_words b ~src:(Array.make 16 1) ~len:16 in
  ignore (Sched.run ~strategy:(Strategy.round_robin ()) [| fiber |]);
  let s = Cache.stats cache in
  Cc.uninstall ();
  check "16 writes" 16 s.Cache.writes;
  (* 2 cold RFOs (one per line), 14 hits *)
  check "two RFOs" 2 s.Cache.rfos;
  check "fourteen hits" 14 s.Cache.hits

(* E9's headline claims as assertions. *)
let test_arc_beats_rf_on_coherence_traffic () =
  let rows =
    Coherence_exp.measure ~readers:6 ~size:32 ~writes_quota:40 ~reads_quota:160
      ~seed:3
  in
  let find name =
    List.find (fun r -> r.Coherence_exp.algorithm = name) rows
  in
  let arc = find "arc" and rf = find "rf" in
  Alcotest.(check bool)
    (Printf.sprintf "arc inv/read %.3f < rf %.3f" arc.Coherence_exp.inv_per_read
       rf.Coherence_exp.inv_per_read)
    true
    (arc.Coherence_exp.inv_per_read < 0.6 *. rf.Coherence_exp.inv_per_read);
  Alcotest.(check bool)
    (Printf.sprintf "rf pays ≈1 RFO per read (%.3f)" rf.Coherence_exp.rfo_per_read)
    true
    (rf.Coherence_exp.rfo_per_read > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "arc throughput %.1f > rf %.1f" arc.Coherence_exp.throughput
       rf.Coherence_exp.throughput)
    true
    (arc.Coherence_exp.throughput > rf.Coherence_exp.throughput)

let test_arc_steady_state_reads_are_traffic_free () =
  (* No writes at all: after warm-up, ARC readers generate zero
     coherence messages — the fast path never touches a line
     exclusively. *)
  let module Arc = Arc_core.Arc.Make (Cc) in
  let cache = Cache.create ~agents:4 in
  Cc.install cache;
  let reg = Arc.create ~readers:3 ~capacity:8 ~init:(Array.make 8 1) in
  let handles = Array.init 3 (Arc.reader reg) in
  (* Warm each reader under the same fiber id it will measure with,
     so the cold fetches land before the reset. *)
  let warm_fibers =
    Array.init 3 (fun i () -> ignore (Arc.read_with handles.(i) ~f:(fun _ _ -> ())))
  in
  let fibers =
    Array.init 3 (fun i () ->
        for _ = 1 to 50 do
          ignore (Arc.read_with handles.(i) ~f:(fun _ _ -> ()))
        done)
  in
  ignore (Sched.run ~strategy:(Strategy.round_robin ()) warm_fibers);
  Cache.reset_stats cache;
  ignore (Sched.run ~strategy:(Strategy.random ~seed:5) fibers);
  let s = Cache.stats cache in
  Cc.uninstall ();
  check "zero invalidations" 0 s.Cache.invalidations;
  check "zero RFOs" 0 s.Cache.rfos;
  check "zero fetches" 0 s.Cache.fetches;
  Alcotest.(check bool) "many hits" true (s.Cache.hits > 100)

let suite =
  [
    Alcotest.test_case "read transitions" `Quick test_read_transitions;
    Alcotest.test_case "write invalidates sharers" `Quick
      test_write_invalidates_sharers;
    Alcotest.test_case "rmw ping-pong" `Quick test_rmw_ping_pong;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "cc_mem without cache" `Quick test_cc_mem_without_cache;
    Alcotest.test_case "cc_mem charges costs" `Quick test_cc_mem_charges_costs;
    Alcotest.test_case "buffer lines" `Quick test_buffer_lines;
    Alcotest.test_case "E9: arc beats rf on traffic" `Quick
      test_arc_beats_rf_on_coherence_traffic;
    Alcotest.test_case "E9: steady-state reads traffic-free" `Quick
      test_arc_steady_state_reads_are_traffic_free;
  ]

(** A file-backed shared-memory instance of {!Arc_mem.Mem_intf.S},
    with the durability layer that makes a register mapping survive
    real process crashes (DESIGN.md §6d).

    {1 Model}

    A {e mapping} is an mmap'd ([MAP_SHARED]) file of machine words:
    a superblock, then an arena of self-describing records —
    synchronization cells, multi-word buffers, raw harness regions
    (see {!Shm_layout}).  {!mem} packages a mapping as a first-class
    [Mem_intf.S], so ARC and every baseline run over it {e unchanged};
    with the register's words living in a shared file instead of the
    OCaml heap, writer and readers can be different OS processes.

    Synchronization words are accessed through C stubs applying
    hardware [__atomic] builtins to the mapping (OCaml's [Atomic] only
    covers heap cells): RMWs are seq-cst — they are the paper's
    synchronization instructions and their cost is the thing being
    measured — and plain cell load/store are acquire/release, which on
    x86-TSO compile to bare MOVs, preserving the paper's §3.3 cost
    model.

    {1 Sharing discipline}

    Allocation (including register creation) is {b creator-only}: the
    bump allocator uses plain stores, so build the full register
    before sharing the mapping.  The supported execution pattern is
    {e create → fork}: child and parent inherit heap handles ([Arc.t],
    readers) that point into the same file.  A {e fresh} process may
    {!attach} a mapping for recovery and inspection ({!recover},
    {!read_latest}, {!iter_buffers}) but must not rebuild a live
    register over it — [create] would reallocate, and writer-private
    heap state ([last_slot], quarantine list) does not survive in the
    file by design; the supervision story for live handles is fork
    inheritance plus {!recover}.

    {1 Durability protocol}

    Every multi-word buffer store ([write_words]) is bracketed by a
    global publish sequence stamped into the buffer's trailer —
    [begin_seq] before the payload copy, [end_seq] after — together
    with the current writer epoch and a checksum over (len, epoch,
    seq, payload).  A SIGKILL loses no {e executed} stores (the pages
    stay in the kernel page cache); it only stops the program between
    two instructions.  So a crash mid-copy leaves
    [begin_seq <> end_seq] (torn), and damage to a completed slot
    breaks its checksum — both convictable by {!recover} from the
    bytes alone, with no cooperation from the dead process.  This is
    process-crash durability, not power-failure durability: nothing
    here calls [msync], because the crash model is kill-9, not losing
    the page cache. *)

(** {1 Mappings} *)

type mapping

val create : path:string -> words:int -> mapping
(** [create ~path ~words] creates (truncating any existing file) and
    maps a fresh [words]-word mapping.  The magic word is written
    last, so a creator crash leaves a file {!attach} rejects.
    @raise Invalid_argument if [words] cannot hold a superblock.
    @raise Unix.Unix_error on filesystem failure. *)

val attach : path:string -> mapping
(** Map an existing register file, validating magic, layout version,
    recorded size and allocation cursor.
    @raise Failure with a diagnostic if the file is not a healthy
    register mapping (wrong magic, version skew, size mismatch).
    @raise Unix.Unix_error on filesystem failure. *)

val close : mapping -> unit
(** Close the backing descriptor.  The mapping itself lives until the
    GC finalizes the bigarray; do not use [m] after [close]. *)

val path : mapping -> string
val size_words : mapping -> int

(** {1 The memory substrate} *)

val mem : mapping -> (module Arc_mem.Mem_intf.S with type atomic = int)
(** The mapping as a register memory substrate ([name = "shm"]).
    Exposing [atomic = int] (a word index into the mapping) lets
    harness code hand superblock cells — e.g. {!epoch_cell} — to
    consumers of [M.atomic], such as an epoch-fenced writer wrapper
    whose fence must survive the writer's death.

    [alloc]/[atomic*] are creator-only (see the sharing discipline
    above); all other operations are cross-process safe.  [blit] does
    not publish a trailer (copy-based baselines only; the register
    write path never blits). *)

(** {1 Superblock} *)

val tick : mapping -> int
(** Fetch-and-add on the shared logical clock: a fresh timestamp
    totally ordered across {e all} processes of the mapping.  History
    events recorded against a shared clock are what make
    cross-process operation intervals comparable to the atomicity
    checker. *)

val clock : mapping -> int
(** Current clock value (next [tick] will return at least this). *)

val epoch : mapping -> int
(** Current writer epoch (starts at 1; bumped by every {!recover}). *)

val epoch_cell : mapping -> int
(** The superblock epoch word as an [M.atomic] of {!mem}'s instance —
    back an epoch fence with this cell and the fence survives any
    process's death. *)

val election : mapping -> int
(** Current writer-election word ([term ∥ vote], see
    {!Arc_util.Term_vote}); {!Arc_util.Term_vote.none} on a fresh
    mapping. *)

val election_cell : mapping -> int
(** The superblock election word as an [M.atomic] of {!mem}'s
    instance — hand it to {!Arc_resilience.Election} and the election
    state survives any process's death, exactly like {!epoch_cell}
    does for the fence.  Manipulate only by seq-cst CAS through the
    substrate. *)

val fence_at : mapping -> int
(** Shared-clock stamp of the most recent {!recover}; 0 if none.  The
    crash-aware checker's [?fence] for the crashed writer's pending
    write. *)

val publish_seq : mapping -> int
(** Number of buffer publishes performed on this mapping so far. *)

val set_geometry : mapping -> readers:int -> capacity:int -> unit
(** Record register geometry so a fresh process can interpret the
    mapping (buffer ordinal [i] = register slot [i]).  Creator-only. *)

val geometry : mapping -> (int * int * int) option
(** [(readers, capacity, nslots)] as recorded, or [None]. *)

val set_harness_region : mapping -> int -> unit
(** Record the base index of the harness raw region (e.g. a crash
    write-log) in the superblock, so the recovering side can find it. *)

val harness_region : mapping -> int
(** Recorded harness region base, 0 if none. *)

(** {1 Reign table (fabric mappings)}

    A fabric mapping — one register per shard, all in one file — adds
    a {e reign table} (layout version 3): per shard, a [term ∥ vote]
    election word, a writer-fence epoch and a recovery-fence stamp,
    each shard slot on its own cache line; plus the single fabric-wide
    {e configuration epoch}, fetch-add-bumped after any shard changes
    leaders.  Certified snapshots load the configuration epoch before
    their first probe pass and re-check it after the last — equality
    proves no handoff completed inside the window (DESIGN.md §8b).

    All [*_cell] accessors return word indices usable as [M.atomic] of
    {!mem}'s instance, exactly like {!epoch_cell}. *)

val alloc_reign_table : mapping -> shards:int -> int
(** Allocate the mapping's reign table (creator-only, at most one per
    mapping), recording its base in the superblock and returning it.
    Election words start at {!Arc_util.Term_vote.none}; the
    configuration epoch and every shard epoch start at 1.
    @raise Invalid_argument on [shards < 1], a second table, or an
    exhausted mapping. *)

val reign_shards : mapping -> int
(** Shard count of the reign table; 0 if the mapping has none. *)

val config_epoch : mapping -> int
(** Current fabric-wide configuration epoch.
    @raise Invalid_argument if the mapping has no reign table. *)

val config_epoch_cell : mapping -> int
(** The configuration-epoch word as an [M.atomic] of {!mem}'s
    instance.  Bumped (fetch-and-add) by a shard's elected successor
    {e after} its §6d takeover and {e before} its first publish, so
    epoch equality across a snapshot's probe window certifies that no
    handoff completed inside it.
    @raise Invalid_argument if the mapping has no reign table. *)

val shard_election : mapping -> shard:int -> int
(** Shard [shard]'s election word ([term ∥ vote]).
    @raise Invalid_argument if out of range or no table. *)

val shard_election_cell : mapping -> shard:int -> int
(** Shard [shard]'s election word as an [M.atomic] — hand it to
    {!Arc_resilience.Election} (or {!Arc_resilience.Reign}) and that
    shard's election state survives any process's death.  Manipulate
    only by seq-cst CAS through the substrate.
    @raise Invalid_argument if out of range or no table. *)

val shard_epoch : mapping -> shard:int -> int
(** Shard [shard]'s writer-fence epoch (starts at 1; bumped by every
    {!recover_shard} and by fenced-handle issue against the shard's
    epoch cell).
    @raise Invalid_argument if out of range or no table. *)

val shard_epoch_cell : mapping -> shard:int -> int
(** Shard [shard]'s epoch word as an [M.atomic]: the per-shard
    analogue of {!epoch_cell}, backing that shard's writer fence.
    @raise Invalid_argument if out of range or no table. *)

val shard_fence_at : mapping -> shard:int -> int
(** Shared-clock stamp of shard [shard]'s most recent
    {!recover_shard}; 0 if never recovered.
    @raise Invalid_argument if out of range or no table. *)

(** {1 Raw words}

    Escape hatches below the substrate abstraction: harness write-logs
    shared between processes ([atomic_*]) and deliberate corruption in
    negative-control tests ([unsafe_*] perform plain, unordered
    accesses). *)

val alloc_raw : mapping -> int -> int
(** Allocate an [n]-word raw region (skipped by the integrity scan),
    returning the index of its first word.  Creator-only. *)

val atomic_get : mapping -> int -> int
val atomic_set : mapping -> int -> int -> unit
val atomic_add : mapping -> int -> int -> int

val unsafe_get : mapping -> int -> int
val unsafe_set : mapping -> int -> int -> unit

(** {1 Buffer inspection} *)

type buffer_info = {
  ordinal : int;  (** allocation order; = register slot for ARC mappings *)
  base : int;  (** record base word index *)
  cap : int;
  state : int;  (** {!Shm_layout.state_live} or [state_quarantined] *)
  len : int;
  bepoch : int;  (** writer epoch stamped at publish *)
  begin_seq : int;
  end_seq : int;
  cksum : int;
}

val iter_buffers : mapping -> (buffer_info -> unit) -> unit
(** Walk every buffer record in allocation order.
    @raise Failure if the record arena is structurally damaged. *)

(** {1 Recovery} *)

type reason =
  | Torn  (** [begin_seq <> end_seq]: the writer died mid-copy *)
  | Checksum  (** trailer complete but contents do not verify *)
  | Bad_length  (** trailer length outside the buffer's capacity *)

val reason_to_string : reason -> string

type conviction = {
  ordinal : int;  (** buffer ordinal = ARC slot index *)
  at : int;  (** record base word index *)
  seq : int;  (** publish sequence of the convicted write *)
  why : reason;
}

type recovery = {
  convicted : conviction list;  (** newly quarantined by this scan *)
  intact : int;  (** buffers holding a verified published snapshot *)
  unpublished : int;  (** buffers never written (empty trailer) *)
  quarantined_before : int;  (** already quarantined by an earlier scan *)
  new_epoch : int;  (** writer epoch after this recovery's bump *)
  recovery_fence : int;  (** shared-clock stamp of this recovery *)
  last_seq : int;  (** highest intact publish sequence, 0 if none *)
}

val recover : mapping -> (recovery, string) result
(** Post-crash integrity scan: classify every buffer from its bytes
    (see the durability protocol above), quarantine torn/corrupt ones
    in the file ([state_quarantined], honoured by later scans and
    {!read_latest}), then open a new writer epoch and stamp
    {!fence_at} with a fresh clock tick.

    Returns [Error] — {e convicting the whole mapping} — if the
    recorded layout version differs from this build's
    ({!Shm_layout.version}: a pre-bump mapping has no election word,
    so interpreting its superblock would fabricate state), if the
    arena is unwalkable, record counts disagree with the superblock,
    or any trailer carries an epoch {b ahead} of the superblock (a
    stale superblock: this file is an older copy of a mapping that
    lived on, so none of its free-slot or fence state can be
    trusted).

    The caller owning a live register handle must mirror the slot
    convictions into it ([quarantine]) and run the register's own
    [recover_crash]; {!Shm_arc.recover} bundles all three steps. *)

val recover_shard : mapping -> shard:int -> (recovery, string) result
(** Shard-scoped recovery for fabric mappings: the same §6d pipeline
    as {!recover}, restricted to shard [shard]'s buffer ordinals
    ([shard·nslots .. (shard+1)·nslots − 1] under the recorded
    geometry).  Out-of-range buffers are not even classified — their
    shards' writers may be live and mid-copy, so a transiently torn
    trailer there is traffic, not evidence.  The epoch bump and fence
    stamp land in the shard's reign-table slot ({!shard_epoch},
    {!shard_fence_at}); the superblock pair is untouched.  Conviction
    ordinals are mapping-wide (subtract [shard·nslots] for the
    register-local slot).

    [Error] convicts the whole mapping exactly as {!recover} does —
    version skew is rejected before any table byte is interpreted —
    plus when the mapping has no reign table, no recorded geometry, or
    [shard] is out of range. *)

val metrics : unit -> Arc_obs.Obs.metric list
(** Process-cumulative recovery telemetry: successful/rejected scans,
    convictions by evidence class (torn / checksum / bad-length) and
    intact buffers, across every mapping this process has recovered.
    Counters are {!Arc_obs.Obs.Cell}s updated on the (effectively
    single-threaded) recovery path. *)

val reset_metrics : unit -> unit
(** Zero the process-cumulative recovery counters (test isolation). *)

val read_latest : mapping -> (int * int array) option
(** The most recent verified snapshot: scans live, intact buffers and
    returns [(publish_seq, payload)] for the highest [end_seq], or
    [None] if nothing verified was ever published.  Works on a freshly
    attached mapping with no register handle — the crash harness's
    view of what survived.
    @raise Failure if the record arena is structurally damaged. *)

module Splitmix = Arc_util.Splitmix

type t = {
  base : int;
  cap : int;
  rng : Splitmix.t;
  mutable attempt : int;
}

let create ?(base = 4) ?(cap = 1024) ~seed () =
  if base < 1 then invalid_arg (Printf.sprintf "Backoff.create: base = %d" base);
  if cap < base then
    invalid_arg (Printf.sprintf "Backoff.create: cap = %d < base = %d" cap base);
  { base; cap; rng = Splitmix.of_int seed; attempt = 0 }

let next t =
  (* Ceiling grows as base·2ⁿ until it saturates at cap; the shift is
     clamped so a long outage can't overflow the exponent. *)
  let shift = min t.attempt 20 in
  let ceiling = min t.cap (t.base * (1 lsl shift)) in
  t.attempt <- t.attempt + 1;
  1 + Splitmix.int t.rng ceiling

let attempts t = t.attempt
let reset t = t.attempt <- 0

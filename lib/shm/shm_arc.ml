(* ARC over a shared-memory mapping: packaging and the recovery
   bundle.  See shm_arc.mli. *)

module type INSTANCE = sig
  module M : Arc_mem.Mem_intf.S with type atomic = int
  module R : Arc_core.Arc.S with module Mem = M

  val mapping : Shm_mem.mapping
  val reg : R.t
end

type instance = (module INSTANCE)

let create ?(use_hint = true) m ~readers ~capacity ~init =
  (match Shm_mem.geometry m with
  | Some _ ->
      invalid_arg
        "Shm_arc.create: mapping already holds a register (attach-and-\
         recreate is not supported; fork instead)"
  | None -> ());
  let module M = (val Shm_mem.mem m) in
  let module R = Arc_core.Arc.Make (M) in
  let reg = R.create_with ~use_hint ~readers ~capacity ~init in
  Shm_mem.set_geometry m ~readers ~capacity;
  (module struct
    module M = M
    module R = R

    let mapping = m
    let reg = reg
  end : INSTANCE)

let recover (module I : INSTANCE) =
  match Shm_mem.recover I.mapping with
  | Error _ as e -> e
  | Ok rcv ->
      (* Buffer ordinal = slot index: Arc.create allocates slot
         contents in slot order and is the mapping's only buffer
         allocator ([create] above refuses mappings with prior
         geometry). *)
      let nslots = I.R.Debug.slots I.reg in
      List.iter
        (fun (c : Shm_mem.conviction) ->
          if c.ordinal < nslots then I.R.quarantine I.reg c.ordinal)
        rcv.convicted;
      let journaled = I.R.recover_crash I.reg in
      Ok (rcv, journaled)

(* {1 Fabric packaging (ISSUE 9)} *)

module type FABRIC_INSTANCE = sig
  module M : Arc_mem.Mem_intf.S with type atomic = int
  module R : Arc_core.Arc.S with module Mem = M

  val mapping : Shm_mem.mapping
  val shards : int
  val regs : R.t array
end

type fabric_instance = (module FABRIC_INSTANCE)

let create_fabric ?(use_hint = true) m ~shards ~readers ~capacity ~init =
  if shards < 1 then invalid_arg "Shm_arc.create_fabric: shards must be >= 1";
  (match Shm_mem.geometry m with
  | Some _ ->
      invalid_arg
        "Shm_arc.create_fabric: mapping already holds a register (attach-and-\
         recreate is not supported; fork instead)"
  | None -> ());
  let module M = (val Shm_mem.mem m) in
  let module R = Arc_core.Arc.Make (M) in
  (* Sequential creation fixes the ordinal map: shard s's buffers are
     mapping ordinals [s·nslots, (s+1)·nslots) — the contract
     {!Shm_mem.recover_shard} scopes its scan by. *)
  let regs =
    Array.init shards (fun _ -> R.create_with ~use_hint ~readers ~capacity ~init)
  in
  ignore (Shm_mem.alloc_reign_table m ~shards);
  Shm_mem.set_geometry m ~readers ~capacity;
  (module struct
    module M = M
    module R = R

    let mapping = m
    let shards = shards
    let regs = regs
  end : FABRIC_INSTANCE)

let recover_shard (module I : FABRIC_INSTANCE) ~shard =
  match Shm_mem.recover_shard I.mapping ~shard with
  | Error _ as e -> e
  | Ok rcv ->
      let reg = I.regs.(shard) in
      let nslots = I.R.Debug.slots reg in
      let lo = shard * nslots in
      List.iter
        (fun (c : Shm_mem.conviction) ->
          let local = c.ordinal - lo in
          if local >= 0 && local < nslots then I.R.quarantine reg local)
        rcv.convicted;
      let journaled = I.R.recover_crash reg in
      Ok (rcv, journaled)

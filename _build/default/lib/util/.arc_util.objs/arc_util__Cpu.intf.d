lib/util/cpu.mli:

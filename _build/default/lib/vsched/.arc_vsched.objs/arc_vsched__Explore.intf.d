lib/vsched/explore.mli:

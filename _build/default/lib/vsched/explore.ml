type outcome = { schedules : int; exhausted : bool; max_decision_depth : int }

(* One schedule = the sequence of runnable-array indices chosen at
   each decision.  Execute following [prefix]; beyond it, always pick
   index 0 while recording how many alternatives existed, so the
   backtracking step can advance the deepest choice with an untried
   sibling.  Re-execution is the price of not snapshotting state —
   acceptable for micro-scenarios. *)

let exhaustive ?(max_schedules = 1_000_000) ~scenario () =
  let prefix : int list ref = ref [] in
  let schedules = ref 0 in
  let max_depth = ref 0 in
  let continue = ref true in
  let exhausted = ref false in
  while !continue && !schedules < max_schedules do
    (* choices.(d) = (picked, available) at decision d of this run *)
    let taken = ref [] in
    let pending = ref !prefix in
    let strategy =
      Strategy.custom ~name:"exhaustive-dfs" (fun ~step:_ ~runnable ->
          let ids, count = runnable () in
          let choice =
            match !pending with
            | c :: rest ->
              pending := rest;
              (* A stale prefix entry can exceed the current count only
                 if the scenario is not reproducible. *)
              if c >= count then
                failwith "Explore.exhaustive: scenario is not deterministic";
              c
            | [] -> 0
          in
          taken := (choice, count) :: !taken;
          Strategy.Run ids.(choice))
    in
    let fibers, check = scenario () in
    let (_ : Sched.outcome) = Sched.run ~strategy fibers in
    incr schedules;
    check ();
    let depth = List.length !taken in
    if depth > !max_depth then max_depth := depth;
    (* Backtrack: drop decisions with no untried sibling, then advance
       the deepest one that has. *)
    let rec advance = function
      | [] -> None
      | (choice, count) :: shallower ->
        if choice + 1 < count then Some ((choice + 1, count) :: shallower)
        else advance shallower
    in
    match advance !taken with
    | None ->
      continue := false;
      exhausted := true
    | Some reversed_choices ->
      prefix := List.rev_map fst reversed_choices
  done;
  { schedules = !schedules; exhausted = !exhausted; max_decision_depth = !max_depth }

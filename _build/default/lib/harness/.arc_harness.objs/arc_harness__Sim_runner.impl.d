lib/harness/sim_runner.ml: Arc_core Arc_trace Arc_vsched Arc_workload Array Config Option Printf

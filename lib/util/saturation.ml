exception Saturated of string

let message ~who ~count ~bound =
  Printf.sprintf "%s: presence count saturated (count = %d, bound = %d)" who
    count bound

let error ~who ~count ~bound = Saturated (message ~who ~count ~bound)
let raise_saturated ~who ~count ~bound = raise (error ~who ~count ~bound)

let guard_count ~who ~bound count =
  if count = 0 || count > bound then raise_saturated ~who ~count ~bound

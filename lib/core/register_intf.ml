(** The common interface of every multi-word (1,N) register in this
    repository — ARC and all baselines implement it, so the test
    suites, the atomicity checker and the benchmark harness are
    written once and instantiated per algorithm.

    Semantics. A register holds a multi-word snapshot (an [int array]
    prefix of up to [capacity] words; each write may have a different
    length, as in the paper §3.3).  Exactly {b one} thread may call
    {!S.write}; up to [readers] threads may read, each through its own
    {!S.reader} handle (a handle must not be shared between threads).

    Reading is exposed as {!S.read_with}: the algorithm materializes a
    consistent snapshot and runs the callback on it.  The buffer
    passed to the callback is only guaranteed stable for the duration
    of the callback — wait-free algorithms such as ARC give stronger
    guarantees (stable until the same reader's next read), which they
    expose through the {!ZERO_COPY} capability.  This formulation
    keeps the comparison honest: ARC runs the callback directly on the
    shared slot (zero copies), Peterson and the seqlock run it on a
    validated private copy, and the lock-based register runs it inside
    the critical section. *)

(** What an algorithm can do, as one first-class record: harness
    layers (registry, figure builders, CLIs) select algorithms by
    querying [caps] instead of hard-coding name lists, and new
    capabilities extend this record instead of scattering more ad-hoc
    [val]s through {!S}. *)
type caps = {
  wait_free : bool;
      (** Both operations complete in a bounded number of steps
          regardless of the scheduler (true for ARC, RF, Peterson;
          false for the lock-based, seqlock and Lamport baselines). *)
  zero_copy : bool;
      (** [read_with] applies the callback directly to shared memory —
          no intermediate snapshot copy on the read path (ARC, RF, the
          lock-based register inside its critical section).  Copy-based
          algorithms (Peterson, seqlock, Lamport) are [false].
          Algorithms whose zero-copy view additionally outlives the
          callback implement the {!ZERO_COPY} sub-signature. *)
  max_readers : capacity_words:int -> int option;
      (** Hard bound on the number of reader threads, if the algorithm
          has one.  RF returns the word-size-dependent bound the paper
          discusses (58 on 64-bit C; 57 with OCaml's 63-bit ints); ARC
          returns [Some (2^32 - 2)]; Simpson [Some 1]; others
          [None]. *)
  snapshot_read : bool;
      (** The versioned-read capability: reads can report a publish
          stamp that changes with every write, and the stamp of the
          currently published value can be probed without copying the
          payload — the two operations of the {!STAMPED} sub-signature.
          This is what makes an algorithm {e fabric-eligible}: the
          cross-shard double-collect snapshot ([Arc_fabric.Fabric])
          compares stamps, not payloads, to detect a shard modified
          during a collect.  Algorithms with [snapshot_read = true]
          must implement {!STAMPED}. *)
}

exception Saturated = Arc_util.Saturation.Saturated
(** Raised by an operation that detects its synchronization state at a
    documented capacity bound — e.g. ARC's packed readers-presence
    count reaching [2^32 - 2] (see {!Arc_util.Packed.max_readers}).
    The alternative is a silent wraparound of the count into the index
    bits, which would corrupt the register undetectably; saturating
    with a diagnostic error is the only safe degradation.  Cannot
    occur when [create]'s reader bound is respected: the guard is
    defense in depth for memory corruption and fault injection.

    This is a rebinding of {!Arc_util.Saturation.Saturated} (ISSUE 8):
    one exception and one message shape shared by the packed-word
    guard ({!Arc_util.Packed.succ_count}), the registers'
    post-increment presence checks, and the admission gate's terminal
    backpressure ([Arc_resilience.Admission]) — so a handler written
    against either name catches all of them. *)

(** {2 Reader admission (ISSUE 8)}

    The graceful alternative to {!Saturated}: instead of pre-declaring
    a static reader population and raising at the capacity bound, an
    {e admission gate} ([Arc_resilience.Admission]) sits in front of
    reader registration and converts capacity pressure into a typed
    verdict.  The verdict vocabulary lives here, next to the error it
    replaces, so core-layer consumers (sessions, harnesses, fabrics)
    can speak it without depending on the gate implementation. *)

type backpressure = {
  retry_after : int;
      (** Suggested delay before retrying admission, in the gate's
          clock units — full-jitter drawn, so synchronized rejected
          arrivals do not stampede back in lockstep. *)
  live : int;  (** Tickets currently held (the load that refused us). *)
  high_water : int;  (** Max simultaneous tickets ever held. *)
}

type 'ticket admission =
  | Admitted of 'ticket
      (** The caller holds a ticket: a leased claim on one reader
          identity, released by an explicit depart or — if the holder
          crashes without departing — reclaimed by the gate's lease
          sweep. *)
  | Backpressured of backpressure
      (** No identity free (and the bounded waiting room, if any, was
          exhausted): retry after [retry_after], or degrade. *)

let supports_readers caps ~readers ~capacity_words =
  match caps.max_readers ~capacity_words with
  | Some bound -> readers <= bound
  | None -> true

module type S = sig
  module Mem : Arc_mem.Mem_intf.S

  type t
  type reader

  val algorithm : string
  (** Short name used in reports: "arc", "rf", "peterson", "rwlock",
      "seqlock". *)

  val caps : caps
  (** The algorithm's capability record (wait-freedom, zero-copy
      reads, reader bound). *)

  val create : readers:int -> capacity:int -> init:int array -> t
  (** [create ~readers ~capacity ~init] builds a register for
      [readers] reader threads holding snapshots of at most [capacity]
      words, initialized to the full contents of [init].
      @raise Invalid_argument if [readers] exceeds the algorithm's
      bound, or [init] is longer than [capacity], or a size is
      non-positive. *)

  val reader : t -> int -> reader
  (** [reader t i] is the handle for reader identity [i] in
      [0, readers).  Each identity must be claimed by at most one
      thread, and a handle used by exactly one thread. *)

  val write : t -> src:int array -> len:int -> unit
  (** Publish the snapshot [src.(0..len-1)].  Single-writer: must only
      ever be called from one thread. *)

  val read_with : reader -> f:(Mem.buffer -> int -> 'a) -> 'a
  (** [read_with rd ~f] obtains the most recent consistent snapshot
      and applies [f buffer len] to it.  [f] must not retain [buffer]
      past its own return and must not write to it. *)

  val read_into : reader -> dst:int array -> int
  (** Copy the snapshot into [dst], returning its length.  Derived
      from {!read_with}; convenient for tests.
      @raise Invalid_argument if [dst] is shorter than the snapshot. *)
end

(** The zero-copy {e pinned view} capability: a read that returns the
    shared buffer itself, stable until this same reader's {b next}
    read — the stronger contract ARC's presence accounting (and RF's
    writer-private trace table) make possible, and the contract
    consumers such as the (M,N) extension and the zero-allocation
    examples rely on.  Implementors must have [caps.zero_copy =
    true]. *)
module type ZERO_COPY = sig
  include S

  val read_view : reader -> Mem.buffer * int
  (** The raw zero-copy read: returns the slot buffer and the snapshot
      length.  The view stays stable until this same reader's next
      read; the buffer must not be written through. *)
end

(** The {e guarded-publish} capability: a write entry point that runs
    a caller-supplied guard {b after} the snapshot copy but
    {b immediately before} the publish step (ARC's W2 exchange).  A
    guard that raises aborts the write with {e nothing published} —
    the target slot was free, so its half-written content is invisible
    and the next write simply reuses it.

    This is the register-side hook epoch-fenced writer failover
    ({!Arc_resilience.Fenced}) builds on: a supervisor that promotes a
    standby writer bumps an epoch, and the deposed writer's in-flight
    write re-validates the epoch at the last step before publication,
    so its late write raises instead of regressing the register.  The
    guard narrows the unfenced window to the single publish
    instruction; the residual race (deposed writer descheduled between
    guard and publish for the whole promotion) is excluded by the
    supervision layer's lease discipline — see DESIGN.md §6c. *)
module type FENCEABLE = sig
  include S

  val write_guarded : t -> guard:(unit -> unit) -> src:int array -> len:int -> unit
  (** [write_guarded t ~guard ~src ~len] is {!S.write} with [guard ()]
      invoked between the content copy and the publish; whatever
      [guard] raises propagates and the register is unchanged (the
      write never took effect).  Single-writer discipline still
      applies to the set of {e non-aborted} writes. *)

  val recover_crash : t -> int
  (** Writer-succession hook: called by a {e new} writer taking over
      from one that may have crashed mid-write (see
      {!Arc_resilience.Supervisor}).  The paper's single-immortal-
      writer model never revisits a half-finished write, but a
      successor must: a crash between the publish exchange and the
      supersede-freeze leaves a slot whose subscribed readers are
      recorded nowhere — it looks free while still being read.
      Implementations journal the at-risk slot before publishing;
      [recover_crash] quarantines the journaled slot (permanently
      excluding it from reuse — a bounded leak covered by
      over-provisioned slots) and returns the number of slots
      quarantined by this call (0 when the journal is clean, i.e. the
      predecessor died between writes). *)

  val quarantine : t -> int -> unit
  (** [quarantine t slot] permanently retires [slot] from the free-slot
      search, exactly as {!recover_crash} does for the journaled slot.
      The external-evidence companion of [recover_crash]: an integrity
      layer below the register (e.g. [Arc_shm.Shm_mem.recover]'s
      checksum scan of a crash-recovered mapping) can convict slots the
      in-register journal knows nothing about — a torn content copy
      left by a writer the OS killed mid-[write_words] — and hands the
      conviction up through this hook.  Writer-role only; idempotent;
      the same bounded-leak accounting as [recover_crash] applies
      (provision one spare reader identity per tolerated crash). *)
end

(** The {e versioned-read} capability ([caps.snapshot_read = true]):
    every published value carries a {b stamp} — a per-register integer
    that differs between any two writes whose values could be
    distinguished — and the register exposes both a stamped read and a
    payload-free stamp probe.

    Contract:
    - {b Monotone per slot}: once a stamp has been returned for a
      storage location, a later different value in that location
      carries a strictly greater stamp, so [probe = collected stamp]
      certifies the location still holds the collected value.
    - {b Probe is cheap}: [probe_stamp] performs O(1) plain loads and
      no RMW — it is the building block of the fabric's double
      collect, executed once per shard per collect pass.
    - A probe that races a write may return a stamp no read ever
      observes; that only causes a (bounded) re-collect, never a false
      match.

    This is the capability the cross-shard snapshot
    ([Arc_fabric.Fabric]) is built on: Afek et al.'s double collect
    needs to ask "was this component modified since I read it?"
    without re-copying multi-KB payloads, and the stamp answers that
    in two loads. *)
module type STAMPED = sig
  include S

  val read_stamped : reader -> f:(Mem.buffer -> int -> 'a) -> int * 'a
  (** [read_stamped rd ~f] is {!S.read_with} returning additionally
      the publish stamp of the snapshot [f] was applied to. *)

  val probe_stamp : t -> int
  (** The stamp of the currently published value — no payload access,
      no RMW, safe from any thread.  Equality with a previously
      collected stamp certifies the register still publishes the
      collected value (see the contract above). *)
end

(** A register algorithm packaged as a functor over the memory
    substrate, so one implementation serves real execution, counting,
    and simulation. *)
module type ALGORITHM = sig
  val algorithm : string

  module Make (M : Arc_mem.Mem_intf.S) : S with module Mem = M
end

(** A fabric-eligible algorithm: same packaging, stamped result. *)
module type STAMPED_ALGORITHM = sig
  val algorithm : string

  module Make (M : Arc_mem.Mem_intf.S) : STAMPED with module Mem = M
end

(** Sharded register fabric with wait-free atomic cross-shard
    snapshots (ISSUE 6).

    A keyed array of (1,N) registers — one shard per key, any
    algorithm with the {!Arc_core.Register_intf.STAMPED} capability
    ([caps.snapshot_read = true]) slots in — plus an atomic
    multi-shard [snapshot]: a vector of shard values that were all
    simultaneously published at one instant inside the snapshot's
    interval.

    The snapshot is Afek et al.'s double collect with modified-twice
    helping, driven by publish stamps instead of payload comparison:
    collect every shard once ([read_stamped]), then certify the vector
    with a probe pass of stamp-only re-reads ([probe_stamp], two plain
    loads per shard).  A shard whose stamp moved is re-collected and
    the pass retried; a shard that moves {e twice} identifies a writer
    whose second write began inside this scan — that writer, having
    seen the scan announced, deposited a complete snapshot of its own
    before publishing, and the scanner adopts it.  Helping is lazy: a
    substrate counter announces active scans, and writers only pay the
    embedded collect while one is in flight (one extra load
    otherwise).  Total cost is bounded by fabric shape — at most
    [2·shards + 3] probe passes — regardless of scheduling, so
    [snapshot] is wait-free whenever the underlying registers are.
    See DESIGN.md §8 for the linearization and helping-validity
    arguments.

    Threading model: [writers] writer threads, writer [w] owning
    shards [s] with [s mod writers = w] (enforced); [readers] scanner
    threads, each with its own {!Make.scanner} context.  Deposits
    travel through host-heap pointers, so all participants must share
    one OCaml heap (the shard registers themselves may live on any
    substrate, including shared memory).

    {b Reign fencing (ISSUE 9).}  A fabric whose shards have
    individually elected writers can {!Make.attach_reign} the
    fabric-wide configuration epoch (one substrate word, bumped by
    {!Arc_resilience.Reign} after every completed per-shard handoff).
    {!Make.snapshot_certified} then brackets each scan round with two
    plain loads of that word and refuses to serve a vector whose probe
    window a handoff landed inside — retrying up to a bounded budget,
    then returning the typed {!reign_change} verdict.  See DESIGN.md
    §8b. *)

type reign_change = { r_opened : int; r_now : int }
(** Certification failure: the configuration epoch read [r_opened] when
    the snapshot's final round opened and [r_now] afterwards, and the
    retry budget is spent.  [r_now > r_opened] means the epoch was
    observed to move; [r_now = r_opened] means the final round's retries
    were spent on deposit starvation (epoch-matched borrowing kept
    hitting the dirty-pass cap) rather than an observed move.  Either
    way the vector was discarded, never served. *)

val reign_metrics : unit -> Arc_obs.Obs.metric list
(** Process-wide reign telemetry: [arc_reign_epoch] (gauge, last epoch
    observed by a completed handoff in this process),
    [arc_reign_handoffs_total], [arc_reign_snapshot_reign_retries_total]
    (rounds re-opened on an observed epoch move),
    [arc_reign_snapshot_starved_reopens_total] (rounds re-opened at the
    dirty-pass cap with the epoch unmoved) and
    [arc_reign_changed_total]. *)

val reset_reign_metrics : unit -> unit

(**/**)

(** Internal: written by {!Arc_resilience.Reign} on handoff and by
    certified scans; exposed for that wiring and for tests. *)
module Reign_tel : sig
  val epoch : int Atomic.t
  val handoffs : int Atomic.t
  val retries : int Atomic.t
  val starved : int Atomic.t
  val changed : int Atomic.t
end

(**/**)

module Make (R : Arc_core.Register_intf.STAMPED) : sig
  type t
  (** A fabric of [shards] registers over [R]. *)

  type scanner
  (** A reader's context: per-shard register handles plus collect
      scratch.  One per reader thread; never shared. *)

  type writer
  (** A writer thread's context (shard ownership + helping state).
      One per writer identity; never shared. *)

  type snap
  (** A snapshot vector.  {b Stability}: a direct snapshot aliases its
      scanner's scratch and stays valid until that scanner's next
      {!snapshot}; a {!borrowed} one is immutable. *)

  val algorithm : string
  (** ["fabric(<R.algorithm>)"]. *)

  val create :
    shards:int -> writers:int -> readers:int -> capacity:int -> init:int array -> t
  (** [create ~shards ~writers ~readers ~capacity ~init] builds
      [shards] registers of [capacity] words initialized to [init],
      provisioned for [readers] scanner threads and [writers] writer
      threads.  Register identities scale with [readers + writers]
      (thread counts), never with [shards].
      @raise Invalid_argument unless [1 <= writers <= shards] and
      [readers >= 1] (plus the register's own constraints). *)

  val of_registers :
    R.t array -> writers:int -> readers:int -> capacity:int -> t
  (** Wrap pre-built registers — e.g. an
      {!Arc_shm.Shm_arc.create_fabric} instance whose shards live in a
      shared mapping — into a fabric.  Each register must have been
      created with at least [readers + writers] identities (identity
      [readers + w] serves writer [w]'s helping collects) and
      [capacity] words; {!create} is [of_registers] over fresh
      registers.  The deposit channel stays host-heap, so each process
      builds its own fabric value over the shared registers and
      helping crosses threads, not processes.
      @raise Invalid_argument unless [1 <= writers <= shards] and
      [readers >= 1]. *)

  val attach_reign : ?max_retries:int -> t -> config:R.Mem.atomic -> unit
  (** Attach the fabric-wide configuration epoch word (for a shm
      fabric, {!Arc_shm.Shm_mem.config_epoch_cell} of the mapping's
      reign table) so {!snapshot_certified} can fence snapshots
      against leader handoffs.  [max_retries] (default: [shards t])
      bounds how many times a certified snapshot re-opens after
      observing the epoch move before it returns {!reign_change}.
      Writers on this fabric value switch their helping scans to the
      certified path; in a multi-process fabric every process must
      attach the same word. *)

  val reign_attached : t -> bool

  val shards : t -> int
  val writers : t -> int
  val readers : t -> int
  val capacity : t -> int

  val owner_of : t -> int -> int
  (** [owner_of t s = s mod writers t] — the writer identity that owns
      shard [s]. *)

  val scanner : t -> int -> scanner
  (** Context for reader identity [i] in [0, readers).
      @raise Invalid_argument if out of range. *)

  val writer : t -> int -> writer
  (** Context for writer identity [w] in [0, writers).
      @raise Invalid_argument if out of range. *)

  val write : writer -> shard:int -> src:int array -> len:int -> unit
  (** Publish [src.(0..len-1)] to [shard].  While a snapshot is
      announced, first takes and deposits a helping snapshot (the
      wait-free helping protocol); otherwise adds a single load to the
      plain register write.  With a reign attached the helping
      snapshot is certified; if certification fails mid-election the
      writer still deposits an uncertified (epoch-0) fallback, so the
      deposit cell is overwritten before {e every} publish that
      observed an announced scan — the invariant plain snapshots'
      borrow freshness rests on.
      @raise Invalid_argument if [shard] is out of range or not owned
      by this writer. *)

  val read : scanner -> shard:int -> dst:int array -> int
  (** Plain single-shard read (no cross-shard guarantee): the
      register's own [read_into] through this scanner's handle. *)

  val read_with : scanner -> shard:int -> f:(R.Mem.buffer -> int -> 'a) -> 'a
  (** Zero-copy single-shard read, as the register's [read_with]. *)

  val snapshot : scanner -> snap
  (** The wait-free atomic cross-shard snapshot.  Linearizes at an
      instant within its own interval: either the start of the final
      (clean) probe pass, or inside the interval of the helping
      deposit it adopted — which itself nests in this call's
      interval. *)

  val snapshot_certified : scanner -> (snap, reign_change) result
  (** {!snapshot} plus reign certification: the configuration epoch is
      loaded before the round's first probe pass and re-loaded after
      its clean pass; equality proves every shard value in the vector
      was published by a reign ≤ the snapshot's {!snap_epoch}
      (successors bump the epoch after takeover, before their first
      publish).  Deposits are adopted only when certified under the
      same epoch.  Costs exactly two extra plain loads over
      {!snapshot} when no election is in flight; when the epoch moves
      (or epoch-matched borrowing starves the dirty-pass cap), retries
      up to [max_retries] rounds (each bounded by the classic pass
      cap) and then returns [Error] — a typed verdict, never a
      possibly cross-reign vector.
      @raise Invalid_argument if no reign is attached. *)

  val snapshot_unvalidated : scanner -> snap
  (** {b Negative control} — one collect pass with no announcement and
      no probe, deliberately non-atomic: concurrent writes leave torn
      vectors.  Exists so tests and campaigns can demonstrate the
      fabric checker convicts what {!snapshot} prevents.  Never a real
      read path. *)

  val shard_len : snap -> int -> int
  val shard_stamp : snap -> int -> int
  val shard_word : snap -> int -> int -> int
  (** [shard_word snap s i] — word [i] of shard [s]'s value. *)

  val shard_copy : snap -> int -> dst:int array -> int
  (** Copy shard [s]'s value into [dst], returning its length.
      @raise Invalid_argument if [dst] is too short. *)

  val borrowed : snap -> bool
  (** [true] iff the snapshot was served from a helping deposit. *)

  val snap_epoch : snap -> int
  (** The configuration epoch the snapshot was certified under; [0]
      for plain (uncertified) snapshots. *)

  (** {2 Telemetry}

      Same wait-free discipline as the registers': host-heap
      single-writer cells, no substrate operations, no RMW. *)

  val snapshots_direct : t -> int
  val snapshots_borrowed : t -> int

  val snapshot_retries : t -> int
  (** Failed probe passes — bounded by [2·shards + 3] per snapshot;
      soaks watch this to falsify the wait-freedom bound. *)

  val deposits_made : t -> int
  val shard_writes : t -> int -> int

  val metrics : t -> Arc_obs.Obs.metric list
  (** Fabric counters (snapshot outcomes, retries, deposits, per-shard
      writes) for {!Arc_obs.Obs.prometheus}/{!Arc_obs.Obs.json}. *)
end

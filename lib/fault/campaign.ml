(* Bounded fault-exploration campaigns (ISSUE 2).

   A campaign drives a register algorithm, instantiated over the
   fault-injecting simulated memory {!Mem}, through many seeded
   (schedule, fault-plan) pairs and checks every run three ways:

   - snapshot integrity: no torn payloads observed by any reader;
   - crash-aware atomicity: the recorded history passes
     {!Arc_trace.Checker.check_crash}, with the writer's pending write
     (if it crashed mid-operation) allowed to vanish or take effect;
   - liveness: every non-crashed fiber ran to completion inside the
     step budget (the simulated analog of the real runner's watchdog),
     and every surviving reader completed at least one operation —
     crash-stop peers must not be able to block the wait-free paths;

   plus an optional register-specific invariant audit (for ARC: the
   presence-ledger slack bound and Lemma 4.1's free slot, see
   {!arc_audit}).

   This module deliberately has no [.mli]: callers instantiate
   [A.Make (Campaign.Mem)] themselves and pass the result to
   {!Make}, keeping white-box access (e.g. [Arc.Debug]) to wire the
   audit probes. *)

module Splitmix = Arc_util.Splitmix
module Sched = Arc_vsched.Sched
module Strategy = Arc_vsched.Strategy
module History = Arc_trace.History
module Checker = Arc_trace.Checker

module Mem = Fault_mem.Make (Arc_vsched.Sim_mem)

type cfg = {
  readers : int;
  size_words : int;
  max_steps : int;  (** per schedule; fibers self-terminate past this *)
  seed : int;
  schedules : int;  (** (schedule, fault-plan) pairs to explore *)
  max_crash_readers : int;  (** crash up to this many readers per run *)
  stall_threads : bool;  (** inject bounded stalls (writer and readers) *)
  crash_writer : bool;  (** allow writer crash, incl. mid-copy tears *)
}

let default =
  {
    readers = 3;
    size_words = 16;
    max_steps = 25_000;
    seed = 42;
    schedules = 100;
    max_crash_readers = 2;
    stall_threads = true;
    crash_writer = true;
  }

(* {1 Invariant probes} *)

type probes = {
  presence_slack : unit -> int;
      (** readers − (Σ_j (r_start j − r_end j) + count current) *)
  free_slot_exists : unit -> bool;
}

(* The ARC slot-accounting safety net under ≤ f crash-stop readers:
   each crashed reader either still holds its subscription (slack 0
   contribution) or died between release (R3) and re-subscribe (R4),
   in which case its presence vanished from the ledger entirely —
   so the quiescent ledger may undershoot the reader count by at most
   the number of crashed readers, and never overshoot it.  A negative
   slack means presence was double-counted (e.g. a lost release); a
   slack above [crashed_readers] means presence leaked out.  Lemma 4.1
   survives crashes: N readers pin at most N of the N+2 slots, so the
   writer always finds a free slot.  Both checks are quiescent-state
   statements, hence skipped when the writer itself crashed
   mid-operation (its half-done slot reset legitimately unbalances the
   ledger). *)
let arc_audit probes ~crashed_readers ~writer_crashed =
  if writer_crashed then []
  else begin
    let errs = ref [] in
    let slack = probes.presence_slack () in
    if slack < 0 || slack > crashed_readers then
      errs :=
        Printf.sprintf
          "presence-ledger slack %d outside [0, %d crashed readers]" slack
          crashed_readers
        :: !errs;
    if not (probes.free_slot_exists ()) then
      errs := "no free slot among the N+2 (Lemma 4.1 violated)" :: !errs;
    !errs
  end

(* {1 Outcomes} *)

type run_result = {
  torn : int;
  reads : int;
  writes : int;
  crashed : bool array;  (** by fiber id; [0] is the writer *)
  unfinished : int;  (** non-crashed fibers still alive at the backstop *)
  starved : int;  (** surviving readers that completed zero operations *)
  stats : Fault_mem.stats;
  check : (Checker.report * Checker.crash_outcome, Checker.violation) result;
  dropped_events : int;
}

type outcome = {
  schedules_run : int;
  reader_crashes : int;
  writer_crashes : int;
  stalls : int;
  tears : int;
  reads_checked : int;
  vanished : int;
  took_effect : int;
  violations : (int * string) list;  (** (schedule seed, description) *)
}

let clean o = o.violations = []

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<h>%d schedules: %d reader crashes, %d writer crashes, %d stalls, %d \
     tears; %d reads checked (%d pending-write vanished, %d took effect) — %s@]"
    o.schedules_run o.reader_crashes o.writer_crashes o.stalls o.tears
    o.reads_checked o.vanished o.took_effect
    (if o.violations = [] then "CLEAN"
     else Printf.sprintf "%d VIOLATIONS" (List.length o.violations))

(* [R] must be instantiated over {!Mem} (the constraint is by type
   equality, which a register over the bare [Sim_mem] would also
   satisfy — but then no fault would ever fire, and the campaign's
   non-vacuity assertions in the callers would catch it). *)
module Make
    (R : Arc_core.Register_intf.S
           with type Mem.atomic = Mem.atomic
            and type Mem.buffer = Mem.buffer) =
struct
  module P = Arc_workload.Payload.Make (Mem)

  type out = { mutable ops : int; mutable torn : int }

  let reader_body ~reg ~id ~size ~max_steps ~recorder ~out ~crashed () =
    try
      let rd = R.reader reg id in
      while Sched.now () < max_steps do
        let invoked = Sched.now () in
        let seq =
          R.read_with rd ~f:(fun buffer len ->
              ignore size;
              match P.validate buffer ~len with
              | Ok seq -> seq
              | Error _ ->
                out.torn <- out.torn + 1;
                P.decode_seq buffer)
        in
        History.Recorder.record recorder ~thread:(id + 1) History.Read ~seq
          ~invoked ~returned:(Sched.now ());
        out.ops <- out.ops + 1;
        Sched.cede ()
      done
    with Fault_plan.Crashed -> crashed.(id + 1) <- true

  let writer_body ~reg ~size ~max_steps ~recorder ~out ~crashed ~pending () =
    try
      let src = Array.make size 0 in
      let seq = ref 0 in
      while Sched.now () < max_steps do
        incr seq;
        P.stamp src ~seq:!seq ~len:size;
        let invoked = Sched.now () in
        pending := Some (!seq, invoked);
        R.write reg ~src ~len:size;
        History.Recorder.record recorder ~thread:0 History.Write ~seq:!seq
          ~invoked ~returned:(Sched.now ());
        pending := None;
        out.ops <- out.ops + 1;
        Sched.cede ()
      done
    with Fault_plan.Crashed -> crashed.(0) <- true

  (* Run one (plan, strategy) pair to completion and judge it.  The
     register is returned alongside so callers can run white-box
     audits on its quiescent final state. *)
  let run_plan ~plan ~strategy (cfg : cfg) : run_result * R.t =
    if cfg.readers < 1 then
      invalid_arg
        (Printf.sprintf "Campaign.run_plan: readers = %d (need >= 1)" cfg.readers);
    if cfg.size_words < 1 then
      invalid_arg
        (Printf.sprintf "Campaign.run_plan: size_words = %d (need >= 1)"
           cfg.size_words);
    let size = cfg.size_words in
    let init = Array.make size 0 in
    P.stamp init ~seq:0 ~len:size;
    let reg = R.create ~readers:cfg.readers ~capacity:size ~init in
    let recorder =
      History.Recorder.create ~threads:(cfg.readers + 1) ~capacity:12_000
    in
    let crashed = Array.make (cfg.readers + 1) false in
    let pending = ref None in
    let outs = Array.init (cfg.readers + 1) (fun _ -> { ops = 0; torn = 0 }) in
    let fibers =
      Array.init (cfg.readers + 1) (fun i ->
          if i = 0 then
            writer_body ~reg ~size ~max_steps:cfg.max_steps ~recorder
              ~out:outs.(0) ~crashed ~pending
          else
            reader_body ~reg ~id:(i - 1) ~size ~max_steps:cfg.max_steps
              ~recorder ~out:outs.(i) ~crashed)
    in
    Mem.install plan;
    let backstop = (cfg.max_steps * 3) + 100_000 in
    let sched_outcome = Sched.run ~max_steps:backstop ~strategy fibers in
    let stats = Mem.drain () in
    let torn = Array.fold_left (fun acc o -> acc + o.torn) 0 outs in
    let reads = ref 0 in
    Array.iteri (fun i o -> if i > 0 then reads := !reads + o.ops) outs;
    let starved = ref 0 in
    Array.iteri
      (fun i o -> if i > 0 && (not crashed.(i)) && o.ops = 0 then incr starved)
      outs;
    let unfinished =
      (* Crashed fibers finish by catching Crashed; anything left
         unfinished at the backstop is a genuine livelock/hang. *)
      sched_outcome.Sched.unfinished
    in
    let history = History.Recorder.history recorder in
    let pending_write = if crashed.(0) then !pending else None in
    let check = Checker.check_crash ?pending_write history in
    ( {
        torn;
        reads = !reads;
        writes = outs.(0).ops;
        crashed;
        unfinished;
        starved = !starved;
        stats;
        check;
        dropped_events = History.Recorder.dropped recorder;
      },
      reg )

  (* Random sound-fault plan for one schedule: crash-stop readers,
     bounded stalls, and (optionally) a writer crash — possibly
     mid-copy, tearing the slot it was filling. *)
  let random_plan rng (cfg : cfg) =
    let plan = ref Fault_plan.empty in
    let ncrash =
      if cfg.max_crash_readers = 0 then 0
      else Splitmix.int rng (min cfg.max_crash_readers cfg.readers + 1)
    in
    let victims = Array.init cfg.readers (fun i -> i + 1) in
    Splitmix.shuffle rng victims;
    for v = 0 to ncrash - 1 do
      plan :=
        Fault_plan.crash ~fiber:victims.(v)
          ~at_access:(1 + Splitmix.int rng 80)
          !plan
    done;
    if cfg.stall_threads && Splitmix.bernoulli rng 0.5 then
      plan :=
        Fault_plan.stall ~fiber:0
          ~at_access:(1 + Splitmix.int rng 40)
          ~steps:(50 + Splitmix.int rng 450)
          !plan;
    if cfg.stall_threads && cfg.readers > 0 && Splitmix.bernoulli rng 0.5 then
      plan :=
        Fault_plan.stall
          ~fiber:(1 + Splitmix.int rng cfg.readers)
          ~at_access:(1 + Splitmix.int rng 60)
          ~steps:(50 + Splitmix.int rng 450)
          !plan;
    if cfg.crash_writer && Splitmix.bernoulli rng 0.3 then begin
      if Splitmix.bernoulli rng 0.5 then
        plan :=
          Fault_plan.tear ~fiber:0
            ~at_copy:(1 + Splitmix.int rng 4)
            ~at_word:(Splitmix.int rng cfg.size_words)
            ~silent:false !plan
      else
        plan :=
          Fault_plan.crash ~fiber:0 ~at_access:(1 + Splitmix.int rng 60) !plan
    end;
    !plan

  let judge ~seed ~(result : run_result) ~audit_errors =
    let violations = ref [] in
    let fail fmt =
      Printf.ksprintf (fun msg -> violations := (seed, msg) :: !violations) fmt
    in
    if result.torn > 0 then fail "%d torn snapshots" result.torn;
    if result.dropped_events > 0 then
      fail "recorder overflow (%d events dropped)" result.dropped_events;
    if result.unfinished > 0 then
      fail "%d fibers never finished (hang/livelock inside the backstop)"
        result.unfinished;
    if result.starved > 0 then
      fail "%d surviving readers completed no operation" result.starved;
    (match result.check with
    | Ok _ -> ()
    | Error v -> fail "%s" (Format.asprintf "%a" Checker.pp_violation v));
    List.iter (fun msg -> fail "invariant: %s" msg) audit_errors;
    !violations

  (* One campaign iteration, addressable by its derived seed: the
     exact (plan, strategy) pair [run] explores as
     [seed = cfg.seed * 1_000_003 + schedule].  Callers (bin/check
     --replay-seed) use it to re-execute a failing schedule from the
     seed a violation line printed. *)
  let run_seed ?audit ~seed (cfg : cfg) :
      Fault_plan.t * run_result * (int * string) list =
    let rng = Splitmix.of_int seed in
    let plan = random_plan rng cfg in
    let strategy = Strategy.random ~seed:(seed + 1) in
    let result, reg = run_plan ~plan ~strategy cfg in
    let crashed_readers =
      let n = ref 0 in
      Array.iteri (fun i c -> if i > 0 && c then incr n) result.crashed;
      !n
    in
    let audit_errors =
      match audit with
      | None -> []
      | Some f -> f reg ~crashed_readers ~writer_crashed:result.crashed.(0)
    in
    (plan, result, judge ~seed ~result ~audit_errors)

  let run ?audit (cfg : cfg) : outcome =
    let acc =
      ref
        {
          schedules_run = 0;
          reader_crashes = 0;
          writer_crashes = 0;
          stalls = 0;
          tears = 0;
          reads_checked = 0;
          vanished = 0;
          took_effect = 0;
          violations = [];
        }
    in
    for schedule = 1 to cfg.schedules do
      let seed = (cfg.seed * 1_000_003) + schedule in
      match run_seed ?audit ~seed cfg with
      | exception Fault_plan.Crashed ->
        (* a Crashed escaping the fiber wrappers is a harness bug *)
        acc :=
          { !acc with violations = (seed, "Crashed escaped a fiber") :: !acc.violations }
      | exception e ->
        acc :=
          {
            !acc with
            schedules_run = !acc.schedules_run + 1;
            violations =
              (seed, Printf.sprintf "run raised: %s" (Printexc.to_string e))
              :: !acc.violations;
          }
      | _plan, result, violations ->
        let crashed_readers =
          let n = ref 0 in
          Array.iteri (fun i c -> if i > 0 && c then incr n) result.crashed;
          !n
        in
        let o = !acc in
        acc :=
          {
            schedules_run = o.schedules_run + 1;
            reader_crashes = o.reader_crashes + crashed_readers;
            writer_crashes =
              (o.writer_crashes + if result.crashed.(0) then 1 else 0);
            stalls = o.stalls + result.stats.Fault_mem.stalls;
            tears = o.tears + List.length result.stats.Fault_mem.tears;
            reads_checked =
              (o.reads_checked
              +
              match result.check with
              | Ok (r, _) -> r.Checker.reads_checked
              | Error _ -> 0);
            vanished =
              (o.vanished
              +
              match result.check with
              | Ok (_, Checker.Vanished) -> 1
              | _ -> 0);
            took_effect =
              (o.took_effect
              +
              match result.check with
              | Ok (_, Checker.Took_effect) -> 1
              | _ -> 0);
            violations = violations @ o.violations;
          }
    done;
    !acc
end

lib/harness/barrier.mli:

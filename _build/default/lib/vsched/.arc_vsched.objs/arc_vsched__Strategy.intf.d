lib/vsched/strategy.mli:

examples/market_feed.ml: Arc_core Arc_mem Arc_util Array Domain Int64 List Printf

lib/util/packed.mli: Format

(** Hardware instance of {!Mem_intf.S}: OCaml 5 [Atomic] for
    synchronization variables, native [int array]s for buffers.

    OCaml atomics are sequentially consistent, which is strictly
    stronger than the TSO fragments the paper's correctness argument
    needs (§3.3); the RMW/plain-load cost asymmetry that ARC's
    fast-path optimization exploits is preserved.

    [fetch_and_or]/[fetch_and_and] have no native OCaml primitive and
    are emulated with CAS retry loops — the standard substitution,
    recorded in DESIGN.md §2.  Each retry is itself an RMW, so the
    counting instance reports the true hardware cost. *)

let name = "real"

type atomic = int Atomic.t

let atomic = Atomic.make

(* Cache-line isolation for hot synchronization words lives in
   {!Isolate} (shared with the telemetry cells of [Arc_obs]): the
   spacer-boxing stand-in for 5.2's [Atomic.make_contended], gated on
   the machine actually having more than one core. *)
let atomic_contended v = Isolate.alloc (fun () -> Atomic.make v)

(* Co-located pair: the two cells are allocated back to back inside
   the padded region, so operations that touch both (ARC's read entry
   and exit, the writer's slot probe) pay one cache line, while other
   slots' counters stay off it. *)
let atomic_contended_pair v1 v2 =
  Isolate.alloc (fun () -> (Atomic.make v1, Atomic.make v2))

let load = Atomic.get
let store = Atomic.set
let exchange = Atomic.exchange
let fetch_and_add = Atomic.fetch_and_add
let add_and_fetch a k = Atomic.fetch_and_add a k + k
let incr a = ignore (Atomic.fetch_and_add a 1)
let compare_and_set = Atomic.compare_and_set

let rec fetch_and_or a mask =
  let old = Atomic.get a in
  if Atomic.compare_and_set a old (old lor mask) then old else fetch_and_or a mask

let rec fetch_and_and a mask =
  let old = Atomic.get a in
  if Atomic.compare_and_set a old (old land mask) then old
  else fetch_and_and a mask

type buffer = int array

let alloc words =
  if words < 0 then invalid_arg "Real_mem.alloc: negative size";
  Array.make words 0

let capacity = Array.length

(* Bulk operations: one [Array.blit] (memmove over unboxed words)
   rather than a per-word loop, so a register write's content copy
   runs at memcpy speed and touches each destination cache line
   once. *)
let write_words buf ~src ~len =
  if len < 0 || len > Array.length src || len > Array.length buf then
    invalid_arg "Real_mem.write_words: bad length";
  Array.blit src 0 buf 0 len

let read_word = Array.get

let read_words buf ~dst ~len =
  if len < 0 || len > Array.length dst || len > Array.length buf then
    invalid_arg "Real_mem.read_words: bad length";
  Array.blit buf 0 dst 0 len

let blit src dst ~len =
  if len < 0 || len > Array.length src || len > Array.length dst then
    invalid_arg "Real_mem.blit: bad length";
  Array.blit src 0 dst 0 len

(* Spin-loop hint on real hardware (the x86 pause instruction). *)
let cede () = Domain.cpu_relax ()
